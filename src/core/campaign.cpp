#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <unordered_set>

#include "core/repro_scenarios.hpp"
#include "core/shrink.hpp"
#include "core/workpool.hpp"
#include "sim/msg_world.hpp"
#include "sim/replay.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

std::uint64_t mix_seed(std::uint64_t seed, int i) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(i) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t x) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(x));
  return buf;
}

/// Coarse AFL-style coverage signature of one run: a 64-bit presence map of
/// the (process, op, register) triples the run exercised, mixed with the
/// decision count. Interleaving- and step-count-insensitive, so thousands of
/// random schedules of the same behaviour collapse onto a handful of
/// signatures — a plan that flips a fresh bit reached genuinely new
/// behaviour and is worth mutating.
std::uint64_t trace_coverage_sig(const Trace& tr) {
  std::uint64_t map = 0;
  std::int64_t decisions = 0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (tr.null_at(i)) continue;
    const Pid pid = tr.pid_at(i);
    const OpKind op = tr.op_at(i);
    std::uint64_t h = (static_cast<std::uint64_t>(pid.is_s()) << 40) ^
                      (static_cast<std::uint64_t>(pid.index) << 32) ^
                      (static_cast<std::uint64_t>(op) << 24);
    const RegAddr addr = tr.addr_at(i);
    if (addr.valid()) h ^= addr.name_hash();
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    map |= 1ULL << (h & 63);
    if (op == OpKind::kDecide) ++decisions;
  }
  return map ^ (0x632BE59BD9B4E019ULL * static_cast<std::uint64_t>(decisions + 1));
}

/// Hoisted, checked ONCE per run (the old code re-ran create_directories
/// inside the per-plan violation loop and ignored its failure — on a
/// read-only directory every tape silently vanished).
void require_writable_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec || !std::filesystem::is_directory(dir)) {
    throw CorpusIoError("campaign: cannot create save dir " + dir +
                        (ec ? ": " + ec.message() : ""));
  }
}

std::function<std::unique_ptr<Scheduler>(std::uint64_t)> random_sched() {
  return [](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
    return std::make_unique<RandomScheduler>(seed ^ 0x5EEDF00DULL);
  };
}

/// Seeded arrival permutation for the 1-concurrent window target.
std::function<std::unique_ptr<Scheduler>(std::uint64_t)> window_sched(int num_c) {
  return [num_c](std::uint64_t seed) -> std::unique_ptr<Scheduler> {
    std::vector<int> arrival(static_cast<std::size_t>(num_c));
    for (int i = 0; i < num_c; ++i) arrival[static_cast<std::size_t>(i)] = i;
    std::uint64_t z = seed;
    for (int i = num_c - 1; i > 0; --i) {
      z = mix_seed(z, i);
      std::swap(arrival[static_cast<std::size_t>(i)],
                arrival[static_cast<std::size_t>(z % static_cast<std::uint64_t>(i + 1))]);
    }
    return std::make_unique<KConcurrencyScheduler>(1, std::move(arrival), 0);
  };
}

std::vector<CampaignTarget> build_targets() {
  std::vector<CampaignTarget> out;
  {
    CampaignTarget t;
    t.name = "cons";
    t.scenario = "cons_leader_crash_commit";
    t.algorithm = "leader consensus (Omega advice + Paxos)";
    t.num_s = 3;
    t.advice = [] { return std::make_shared<OmegaFd>(12); };
    t.make_sched = random_sched();
    t.max_steps = 12000;
    t.bounds = {800, 2500, 5000};
    t.expect_clean = true;
    t.space.num_s = 3;
    t.space.num_c = 3;
    t.space.horizon = 2500;
    t.space.max_crashes = 2;
    t.space.trigger_prefixes = {"cons/ACC"};
    t.space.allow_fd_faults = true;
    t.space.max_gst = 60;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 400;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "ksa";
    t.scenario = "ksa_starved_leader";
    t.algorithm = "k-set agreement (vector-Omega-k advice, KSA)";
    t.num_s = 4;
    t.advice = [] { return std::make_shared<VectorOmegaK>(2, 25); };
    t.make_sched = random_sched();
    t.max_steps = 12000;
    t.bounds = {1200, 2500, 5000};
    t.expect_clean = true;
    t.space.num_s = 4;
    t.space.num_c = 4;
    t.space.horizon = 2500;
    t.space.max_crashes = 2;
    t.space.trigger_prefixes = {"ksa/"};
    t.space.allow_fd_faults = true;
    t.space.max_gst = 60;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 400;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "ren";
    t.scenario = "renaming_flip_lockstep";
    t.algorithm = "k-concurrent renaming (Fig. 4)";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 8000;
    t.bounds = {600, 2000, 4000};
    t.expect_clean = true;
    t.space.num_s = 1;
    t.space.num_c = 3;
    t.space.horizon = 2000;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 300;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "p1c";
    t.scenario = "one_conc_window";
    t.algorithm = "generic 1-concurrent solver (Prop. 1) on consensus";
    t.num_s = 0;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = window_sched(3);
    t.max_steps = 2000;
    t.bounds = {64, 500, 500};
    t.expect_clean = true;
    t.space.num_s = 0;
    t.space.num_c = 3;
    t.space.horizon = 500;
    t.space.max_crashes = 0;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "synth";
    t.scenario = "synth_write_race";
    t.algorithm = "seeded bug: racing writers (shrinker reference)";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 2000;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 3;
    t.space.horizon = 1000;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 200;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "bcf";
    t.scenario = "buggy_cons_first_writer";
    t.algorithm = "seeded bug: first-writer consensus";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 1500;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 8;
    t.space.horizon = 500;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "brn";
    t.scenario = "buggy_ren_stale_claim";
    t.algorithm = "seeded bug: stale-claim renaming";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 1500;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 8;
    t.space.horizon = 500;
    t.space.max_crashes = 1;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    out.push_back(std::move(t));
  }
  {
    CampaignTarget t;
    t.name = "tw";
    t.scenario = "buggy_torn_commit";
    t.algorithm = "seeded bug: torn A/B epoch commit";
    t.num_s = 1;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 2000;
    t.expect_clean = false;
    t.space.num_s = 1;
    t.space.num_c = 4;
    t.space.horizon = 800;
    t.space.max_crashes = 1;
    t.space.trigger_prefixes = {"tw/A", "tw/B"};
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 150;
    out.push_back(std::move(t));
  }
  {
    // E20 lossy-link pair, raw half: FloodMin with a decision timeout over
    // the 3x3 message grid. Random link storms (drops, severs) starve
    // processes into deciding on partial views and break 2-set agreement —
    // the campaign must CATCH it with a shrunk, double-replayed tape.
    CampaignTarget t;
    t.name = "mpfm_raw";
    t.scenario = "mp_floodmin_lossy_raw";
    t.algorithm = "seeded bug: timeout FloodMin over lossy links (E20 raw)";
    t.num_s = 9;  // the 3x3 link-daemon grid
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 6000;
    t.expect_clean = false;
    t.space.num_s = 0;  // daemons are infrastructure: no S-kills
    t.space.num_c = 3;
    // Tight horizon: unstormed runs decide within ~150 steps, so charges
    // sampled over a longer window would land on finished runs.
    t.space.horizon = 80;
    t.space.max_crashes = 0;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    t.space.mp_senders = 3;
    t.space.mp_mailboxes = 3;
    t.space.max_link_actions = 8;
    t.space.max_link_charge = 3;
    t.space.max_sever_window = 48;
    out.push_back(std::move(t));
  }
  {
    // E20 lossy-link pair, hardened half: the SAME decision problem behind
    // the ack/retransmit layer. Must survive every storm the space can
    // sample — the per-link loss budget (actions x charge) stays below the
    // retry budget (12 doubling rounds), so liveness bounds can be honest.
    CampaignTarget t;
    t.name = "mpfm_rt";
    t.scenario = "mp_floodmin_lossy_rt";
    t.algorithm = "retransmit-hardened FloodMin over lossy links (E20)";
    t.num_s = 9;
    t.advice = [] { return std::make_shared<TrivialFd>(); };
    t.make_sched = random_sched();
    t.max_steps = 30000;
    t.bounds = {3000, 8000, 16000};
    t.bounds.retransmit_storm_window = 400;
    t.expect_clean = true;
    t.space.num_s = 0;
    t.space.num_c = 3;
    // Tight horizon: unstormed runs decide within ~150 steps, so charges
    // sampled over a longer window would land on finished runs.
    t.space.horizon = 140;
    t.space.max_crashes = 0;
    t.space.allow_fd_faults = false;
    t.space.max_bursts = 2;
    t.space.max_burst_len = 100;
    t.space.mp_senders = 3;
    t.space.mp_mailboxes = 3;
    t.space.max_link_actions = 4;
    t.space.max_link_charge = 2;
    t.space.max_sever_window = 32;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

const std::vector<CampaignTarget>& campaign_targets() {
  static const std::vector<CampaignTarget> targets = build_targets();
  return targets;
}

const CampaignTarget* find_campaign_target(const std::string& name) {
  for (const auto& t : campaign_targets()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

int CampaignRun::safety_violations() const {
  return static_cast<int>(std::count_if(violations.begin(), violations.end(),
                                        [](const CampaignViolation& v) { return v.safety; }));
}

int CampaignRun::wait_free_violations() const {
  return static_cast<int>(std::count_if(violations.begin(), violations.end(),
                                        [](const CampaignViolation& v) { return v.wait_free; }));
}

bool CampaignRun::verdict_ok() const {
  if (expect_clean) return violations.empty();
  return std::any_of(violations.begin(), violations.end(), [](const CampaignViolation& v) {
    return v.safety && (v.shrunk_steps == 0 || v.shrunk_replay_ok);
  });
}

std::uint64_t campaign_plan_seed(std::uint64_t campaign_seed, const std::string& target,
                                 int index) {
  // The target-name fold decorrelates plan sequences across targets: the old
  // mix_seed(seed, i) gave every target the SAME plans (and two campaigns
  // writing into one save_dir the same tape stems).
  return mix_seed(campaign_seed ^ fnv1a(target), index);
}

PlanOutcome run_plan(const CampaignTarget& target, const FaultPlan& plan,
                     std::uint64_t plan_seed, bool monitors) {
  const Scenario* sc = find_scenario(target.scenario);
  if (sc == nullptr) {
    throw std::invalid_argument("run_plan: unknown scenario " + target.scenario);
  }
  if (!target.advice || !target.make_sched) {
    throw std::invalid_argument("run_plan: target '" + target.name +
                                "' missing advice or scheduler factory");
  }

  PlanOutcome out;
  out.plan_seed = plan_seed;
  out.plan = plan;

  const FailurePattern base(target.num_s);
  const DetectorPtr advice = plan.corrupt(target.advice());

  // Rehearsal: resolve the plan's S-kills (storm step indices, trigger
  // matches) into concrete crash TIMES over the base pattern.
  std::vector<std::optional<Time>> crash_at(static_cast<std::size_t>(target.num_s));
  if (!plan.storm.empty() || !plan.triggers.empty()) {
    World rehearsal = sc->make_world(base, advice->history(base, plan_seed));
    const auto inner = target.make_sched(plan_seed);
    BurstScheduler bursts(*inner, plan.bursts);
    const PlanDriveResult pdr = drive_with_plan(rehearsal, bursts, target.max_steps, plan);
    out.rehearsal_steps = pdr.drive.steps;
    int never_crashed = target.num_s;
    for (std::size_t k = 0; k < pdr.applied.size(); ++k) {
      const auto qi = static_cast<std::size_t>(pdr.applied[k].s_index);
      if (crash_at[qi]) continue;
      // Correct algorithms are only live while some S-process survives:
      // cap the kills there so a liveness violation is the ALGORITHM's.
      if (target.expect_clean && never_crashed <= 1) continue;
      crash_at[qi] = pdr.applied_at[k];
      --never_crashed;
    }
  }
  const FailurePattern eff(crash_at);

  // Authoritative run: honest advice recomputed over the EFFECTIVE
  // pattern, then plan-corrupted; bursts wrap the scheduler; the monitor
  // watches with plan-scaled bounds.
  const DetectorPtr eff_advice = plan.corrupt(target.advice());
  World w = sc->make_world(eff, eff_advice->history(eff, plan_seed));
  w.enable_trace();

  std::int64_t total_burst = 0;
  for (const auto& b : plan.bursts) total_burst += b.length;
  // Link-fault liveness allowance: every lost delivery costs the hardened
  // protocols a doubling-backoff retry wait, so the worst-case recovery time
  // is exponential in the per-run loss budget (capped well below the retry
  // horizon by the target's space). Sever windows only HOLD messages; they
  // add linearly.
  std::int64_t lost_charge = 0;
  std::int64_t sever_hold = 0;
  for (const auto& la : plan.links) {
    if (la.kind == LinkFaultKind::kSever) {
      sever_hold += la.amount;
    } else {
      lost_charge += la.amount;
    }
  }
  const std::int64_t link_wait =
      plan.links.empty()
          ? 0
          : (std::int64_t{16} << std::min<std::int64_t>(lost_charge + 1, 10)) + 4 * sever_hold;
  const Time stab = eff_advice->stabilization_time(eff);
  MonitorBounds mb;
  if (target.bounds.own_steps_to_decide > 0) {
    mb.own_steps_to_decide =
        target.bounds.own_steps_to_decide + 2 * stab + total_burst + link_wait;
  }
  if (target.bounds.starvation_window > 0) {
    mb.starvation_window = target.bounds.starvation_window + total_burst;
  }
  if (target.bounds.livelock_window > 0) {
    mb.livelock_window =
        target.bounds.livelock_window + 4 * stab + 2 * total_burst + 2 * link_wait;
  }
  if (target.bounds.retransmit_storm_window > 0) {
    // Each lost delivery legitimately buys extra retransmissions; the storm
    // flag is reserved for send volume NO sampled loss budget explains.
    mb.retransmit_storm_window =
        target.bounds.retransmit_storm_window + 16 * lost_charge + 8 * sever_hold;
  }
  LivenessMonitor monitor(mb);
  if (monitors) w.attach_observer(&monitor);

  const auto inner = target.make_sched(plan_seed);
  BurstScheduler bursts(*inner, plan.bursts);
  RecordingScheduler rec(bursts);
  DriveResult dr;
  std::vector<LinkFaultPoint> applied_links;
  if (plan.links.empty()) {
    dr = drive(w, rec, target.max_steps);
  } else {
    // Authoritative drive with the link half of the plan only: S-kills were
    // already realized as the effective pattern above, so storms/triggers
    // must not fire a second time. With no kills, triggers, or links,
    // drive_with_plan steps identically to drive() — the branch exists so
    // link-free targets provably keep their pre-link verdict stream.
    FaultPlan link_only = plan;
    link_only.storm.clear();
    link_only.triggers.clear();
    const PlanDriveResult pdr = drive_with_plan(w, rec, target.max_steps, link_only);
    dr = pdr.drive;
    applied_links = pdr.applied_links;
  }
  w.attach_observer(nullptr);
  if (monitors) monitor.finalize(w);

  out.steps = dr.steps;
  out.monitored_steps = monitor.monitored_steps();
  out.max_own_steps_to_decide = monitor.max_own_steps_to_decide();
  for (const auto& v : monitor.violations()) {
    if (v.kind == MonitorViolation::Kind::kStarvation) ++out.starvation_observations;
    if (v.kind == MonitorViolation::Kind::kRetransmitStorm) out.retransmit_storm = true;
  }
  out.coverage_sig = trace_coverage_sig(w.trace());

  out.safety = sc->violated(w);
  // A retransmit storm is a liveness finding on par with a broken
  // wait-freedom bound: the hardened protocols must converge without
  // unexplained send volume. Only targets that SET the storm window can flag
  // it, so link-free targets are untouched.
  out.wait_free_bad = monitors && (!monitor.wait_free_ok() || out.retransmit_storm);
  if (!out.violated()) return out;

  if (out.safety) {
    out.detail = "scenario safety predicate violated";
  }
  if (out.wait_free_bad) {
    for (const auto& v : monitor.violations()) {
      if (v.kind == MonitorViolation::Kind::kWaitFree ||
          v.kind == MonitorViolation::Kind::kRetransmitStorm) {
        if (!out.detail.empty()) out.detail += "; ";
        out.detail += v.to_string();
        break;
      }
    }
  }

  out.tape = ScheduleTape::capture(target.scenario, eff, rec.steps(), {}, w.trace());
  out.tape.linkfaults = applied_links;
  if (msg_substrate(w) != nullptr) out.tape.substrate = "msg";
  // expect_violated records the SAFETY predicate outcome truthfully (a
  // wait-freedom-only tape replays "ok, as expected"); the finding line is
  // the triage-facing verdict that says WHY the tape was kept.
  out.tape.expect_violated = out.safety;
  out.tape.plan = plan.to_string();
  out.tape.finding = out.safety && out.wait_free_bad ? "safety+wait-free"
                     : out.safety                    ? "safety"
                                                     : "wait-free";
  return out;
}

ShrunkFinding shrink_finding(const std::string& scenario, const ScheduleTape& tape) {
  const Scenario* sc = find_scenario(scenario);
  if (sc == nullptr) {
    throw std::invalid_argument("shrink_finding: unknown scenario " + scenario);
  }
  const TapePredicate still_fails = scenario_predicate(*sc, true);
  ShrunkFinding out;
  out.mini = shrink_tape(tape, still_fails);
  const ScenarioReplayOutcome stamp = replay_in_scenario(*sc, out.mini);
  out.mini.expect_hash = stamp.replay.hash;
  out.mini.expect_violated = true;
  out.mini.plan = tape.plan;
  out.mini.finding = tape.finding;
  const ScenarioReplayOutcome again = replay_in_scenario(*sc, out.mini);
  out.replay_ok = again.replay.hash_match && again.violated;
  return out;
}

CampaignRun run_campaign(const CampaignTarget& target, const CampaignOptions& opts) {
  if (find_scenario(target.scenario) == nullptr) {
    throw std::invalid_argument("run_campaign: unknown scenario " + target.scenario);
  }
  if (!opts.save_dir.empty()) require_writable_dir(opts.save_dir);

  CampaignRun run;
  run.target = target.name;
  run.scenario = target.scenario;
  run.algorithm = target.algorithm;
  run.expect_clean = target.expect_clean;
  run.plans = opts.plans;

  for (int i = 0; i < opts.plans; ++i) {
    const std::uint64_t plan_seed = campaign_plan_seed(opts.seed, target.name, i);
    const FaultPlan plan = FaultPlan::sample(plan_seed, target.space);
    if (plan.fd.kind != FdFaultKind::kNone) ++run.plans_with_fd_fault;
    if (!plan.storm.empty()) ++run.plans_with_storm;
    if (!plan.triggers.empty()) ++run.plans_with_trigger;
    if (!plan.bursts.empty()) ++run.plans_with_burst;
    if (!plan.links.empty()) ++run.plans_with_link;

    PlanOutcome out = run_plan(target, plan, plan_seed, opts.monitors);
    run.total_steps += out.steps;
    run.rehearsal_steps += out.rehearsal_steps;
    run.monitored_steps += out.monitored_steps;
    run.max_own_steps_to_decide =
        std::max(run.max_own_steps_to_decide, out.max_own_steps_to_decide);
    run.starvation_observations += out.starvation_observations;

    if (!out.violated()) {
      ++run.clean_plans;
      continue;
    }

    CampaignViolation viol;
    viol.target = target.name;
    viol.plan_seed = plan_seed;
    viol.plan = out.tape.plan;
    viol.safety = out.safety;
    viol.wait_free = out.wait_free_bad;
    viol.detail = out.detail;
    viol.tape_steps = static_cast<std::int64_t>(out.tape.steps.size());

    std::string stem;
    if (!opts.save_dir.empty()) {
      // Collision-proof stem: campaign seed + plan seed + the tape's own
      // trace hash. Two campaigns sharing a save_dir can no longer silently
      // overwrite each other's findings.
      stem = opts.save_dir + "/" + target.name + "_s" + std::to_string(opts.seed) + "_" +
             std::to_string(plan_seed) + "_" + hex16(out.tape.expect_hash.value_or(0));
      save_tape(out.tape, stem + ".tape");
      viol.tape_path = stem + ".tape";
    }

    // Auto-shrink safety violations (the ddmin oracle is the scenario
    // predicate; wait-freedom-only findings have no tape-level oracle).
    if (opts.shrink && out.safety) {
      const ShrunkFinding sf = shrink_finding(target.scenario, out.tape);
      viol.shrunk_steps = static_cast<std::int64_t>(sf.mini.steps.size());
      viol.shrunk_replay_ok = sf.replay_ok;
      if (!stem.empty()) save_tape(sf.mini, stem + ".min.tape");
    }
    run.violations.push_back(std::move(viol));
  }
  return run;
}

namespace {

/// Per-target farm state, advanced only by the (sequential) dispatcher.
struct TargetState {
  const CampaignTarget* target = nullptr;
  FarmTargetStats stats;
  int next_index = 0;     ///< next fresh-sample plan index
  int external_index = 0; ///< seed counter for PlanSource submissions
  std::unordered_set<std::uint64_t> sigs;  ///< coverage signatures seen
  std::deque<FaultPlan> pool;              ///< novel-coverage plans (mutation fuel)

  void remember(const FaultPlan& plan) {
    pool.push_back(plan);
    if (pool.size() > 64) pool.pop_front();
  }
};

/// One batch slot: everything the sequential post-pass needs, in slot order.
struct Slot {
  int target = 0;  ///< index into states
  FaultPlan plan;
  std::uint64_t plan_seed = 0;
  bool mutated = false;
  bool external = false;
  PlanOutcome out;
  std::uint64_t raw_key = 0;             ///< corpus_key of the raw tape (violations)
  std::optional<ShrunkFinding> shrunk;   ///< filled by the parallel shrink pass
};

}  // namespace

FarmStats run_farm(const std::vector<const CampaignTarget*>& targets, const FarmOptions& opts) {
  if (targets.empty()) throw std::invalid_argument("run_farm: no targets");
  for (const auto* t : targets) {
    if (t == nullptr) throw std::invalid_argument("run_farm: null target");
    if (find_scenario(t->scenario) == nullptr) {
      throw std::invalid_argument("run_farm: unknown scenario " + t->scenario);
    }
  }

  FarmStats stats;
  CorpusStore corpus;
  if (!opts.corpus_dir.empty()) {
    const CorpusStore::LoadReport rep = corpus.open(opts.corpus_dir);
    stats.corpus_seeded += rep.loaded;
    stats.quarantined += rep.quarantined;
  }
  for (const auto& dir : opts.seed_corpora) {
    const CorpusStore::LoadReport rep = corpus.absorb(dir);
    stats.corpus_seeded += rep.loaded;
    stats.quarantined += rep.quarantined;
  }

  std::vector<TargetState> states(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    states[t].target = targets[t];
    states[t].stats.target = targets[t]->name;
    states[t].stats.expect_clean = targets[t]->expect_clean;
  }

  // One resident crew for the whole serve: per-batch thread spawn costs more
  // than it looks — each fresh std::thread starts with cold thread-local
  // register-interner memos and a cold allocator arena, and at farm batch
  // rates (thousands per minute) that re-warming made 8 workers SLOWER than
  // one. Parked persistent workers keep per-thread state hot across batches.
  ResidentPool pool(opts.workers);

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  double next_soak = opts.soak_interval_s;
  std::size_t rr = 0;  ///< round-robin cursor over targets

  const auto emit_soak = [&](const std::string& mode) {
    if (!opts.on_soak) return;
    FarmStats snap = stats;
    snap.elapsed_s = elapsed();
    snap.corpus_size = corpus.size();
    snap.corpus_aliases = corpus.alias_count();
    snap.targets.clear();
    for (const auto& s : states) snap.targets.push_back(s.stats);
    opts.on_soak(farm_json(snap, opts, mode));
  };

  for (;;) {
    // Stop conditions hold only at batch boundaries: the in-flight batch
    // always completes and its findings are processed (graceful drain).
    if (opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed)) {
      stats.drained = true;
      break;
    }
    if (opts.duration_s > 0 && elapsed() >= opts.duration_s) break;
    if (opts.max_plans > 0 && stats.plans >= opts.max_plans) break;

    // Phase 1 (sequential): build the batch. External submissions first,
    // then round-robin seeded/mutated plans. All nondeterminism is derived
    // from plan_seed, so a farm re-run with the same seed and no external
    // source replays the exact same plan stream.
    const int want = opts.max_plans > 0
                         ? static_cast<int>(std::min<std::int64_t>(
                               opts.batch, opts.max_plans - stats.plans))
                         : opts.batch;
    std::vector<Slot> batch;
    batch.reserve(static_cast<std::size_t>(want));
    while (opts.source != nullptr && static_cast<int>(batch.size()) < want) {
      auto sub = opts.source->poll();
      if (!sub) break;
      int ti = -1;
      for (std::size_t t = 0; t < states.size(); ++t) {
        if (states[t].target->name == sub->first) { ti = static_cast<int>(t); break; }
      }
      if (ti < 0) continue;  // unknown target name: drop the submission
      Slot s;
      s.target = ti;
      s.plan = std::move(sub->second);
      s.plan_seed = campaign_plan_seed(opts.seed ^ 0xE7F4A5C3D2B1906FULL,
                                       states[static_cast<std::size_t>(ti)].target->name,
                                       states[static_cast<std::size_t>(ti)].external_index++);
      s.external = true;
      batch.push_back(std::move(s));
    }
    while (static_cast<int>(batch.size()) < want) {
      const auto ti = rr++ % states.size();
      TargetState& ts = states[ti];
      Slot s;
      s.target = static_cast<int>(ti);
      s.plan_seed = campaign_plan_seed(opts.seed, ts.target->name, ts.next_index++);
      // Deterministic search-move choice: mostly fresh samples, with mutation
      // and splice moves drawn from the novel-coverage pool when available.
      const std::uint64_t move = s.plan_seed >> 56;
      if (opts.mutate && !ts.pool.empty() && move % 4 == 1) {
        const auto pi = static_cast<std::size_t>((s.plan_seed >> 8) % ts.pool.size());
        s.plan = ts.pool[pi].mutate(s.plan_seed, ts.target->space);
        s.mutated = true;
      } else if (opts.mutate && ts.pool.size() >= 2 && move % 8 == 2) {
        const auto pa = static_cast<std::size_t>((s.plan_seed >> 8) % ts.pool.size());
        const auto pb = static_cast<std::size_t>((s.plan_seed >> 20) % (ts.pool.size() - 1));
        s.plan = FaultPlan::splice(ts.pool[pa], ts.pool[pb + (pb >= pa ? 1 : 0)],
                                   s.plan_seed, ts.target->space);
        s.mutated = true;
      } else {
        s.plan = FaultPlan::sample(s.plan_seed, ts.target->space);
      }
      batch.push_back(std::move(s));
    }
    if (batch.empty()) break;

    // Phase 2 (parallel): run the batch on the work-stealing pool. run_plan
    // is pure in its arguments, so verdicts are byte-identical to the
    // one-shot runner's regardless of worker count or steal order.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(batch.size());
    for (auto& s : batch) {
      tasks.emplace_back([&s, &states, &opts] {
        const TargetState& ts = states[static_cast<std::size_t>(s.target)];
        s.out = run_plan(*ts.target, s.plan, s.plan_seed, opts.monitors);
      });
    }
    pool.run(std::move(tasks));
    ++stats.batches;

    // Phase 3a (sequential): decide which findings need a shrink — safety
    // violations whose raw tape key is known neither to the corpus nor to an
    // earlier slot of THIS batch. Phase 3b then runs the shrinks on the pool
    // (ddmin is pure in (scenario, tape)), so the expensive part of finding
    // classification parallelizes too; 3c consumes the results in slot
    // order, which keeps every corpus decision deterministic.
    {
      std::unordered_set<std::uint64_t> claimed;
      std::vector<Slot*> to_shrink;
      for (auto& s : batch) {
        if (!s.out.violated()) continue;
        s.raw_key = corpus_key(s.out.tape);
        if (opts.shrink && s.out.safety && !corpus.contains(s.raw_key) &&
            claimed.insert(s.raw_key).second) {
          to_shrink.push_back(&s);
        }
      }
      std::vector<std::function<void()>> shrinks;
      shrinks.reserve(to_shrink.size());
      for (Slot* s : to_shrink) {
        const CampaignTarget* tgt = states[static_cast<std::size_t>(s->target)].target;
        shrinks.emplace_back(
            [s, tgt] { s->shrunk = shrink_finding(tgt->scenario, s->out.tape); });
      }
      pool.run(std::move(shrinks));
    }

    // Phase 3c (sequential, slot order): counters, coverage pool, corpus
    // classification.
    for (auto& s : batch) {
      TargetState& ts = states[static_cast<std::size_t>(s.target)];
      ++stats.plans;
      ++ts.stats.plans;
      stats.total_steps += s.out.steps;
      ts.stats.total_steps += s.out.steps;
      ts.stats.starvation_observations += s.out.starvation_observations;
      if (s.mutated) { ++stats.mutated; ++ts.stats.mutated; }
      if (s.external) { ++stats.external; ++ts.stats.external; }
      if (ts.sigs.insert(s.out.coverage_sig).second) {
        ++stats.coverage_sigs;
        ++ts.stats.coverage_sigs;
        if (opts.mutate) ts.remember(s.plan);
      }
      if (!s.out.violated()) {
        ++stats.clean;
        ++ts.stats.clean;
        continue;
      }
      ++stats.violations;
      if (s.out.safety) ++ts.stats.safety_violations;
      if (s.out.wait_free_bad) ++ts.stats.wait_free_violations;

      if (corpus.contains(s.raw_key)) {
        ++stats.duplicates;
        ++ts.stats.duplicates;
        continue;
      }
      const std::string stem =
          ts.target->name + "_s" + std::to_string(opts.seed) + "_" + std::to_string(s.plan_seed);
      if (s.shrunk) {
        const ShrunkFinding& sf = *s.shrunk;
        ++stats.shrunk;
        if (sf.replay_ok) ++stats.shrink_replays_ok;
        const std::uint64_t mini_key = corpus_key(sf.mini);
        if (corpus.contains(mini_key)) {
          // A different plan shrank onto a known minimal tape: duplicate.
          // The raw alias makes the NEXT exact rediscovery skip the shrink.
          ++stats.duplicates;
          ++ts.stats.duplicates;
          corpus.add_alias(s.raw_key, mini_key);
          continue;
        }
        corpus.insert(mini_key, sf.mini, stem);
        corpus.add_alias(s.raw_key, mini_key);
      } else if (opts.shrink && s.out.safety) {
        // An earlier slot of this batch claimed the same raw key and shrank
        // it; that slot's corpus decision already covers this finding.
        ++stats.duplicates;
        ++ts.stats.duplicates;
        continue;
      } else {
        // Wait-freedom-only findings have no tape-level shrink oracle: the
        // raw tape is the canonical corpus entry.
        corpus.insert(s.raw_key, s.out.tape, stem);
      }
      ++stats.novel;
      ++ts.stats.novel;
    }

    if (opts.soak_interval_s > 0 && elapsed() >= next_soak) {
      emit_soak("soak");
      next_soak = elapsed() + opts.soak_interval_s;
    }
  }

  stats.elapsed_s = elapsed();
  stats.corpus_size = corpus.size();
  stats.corpus_aliases = corpus.alias_count();
  for (const auto& s : states) stats.targets.push_back(s.stats);
  emit_soak("final");
  return stats;
}

telemetry::Json farm_json(const FarmStats& stats, const FarmOptions& opts,
                          const std::string& mode) {
  using telemetry::Json;
  Json doc = Json::object();
  doc["schema"] = Json("efd-campaign-farm-v1");
  doc["experiment"] = Json("campaign-farm");
  doc["git"] = Json(telemetry::git_describe());
  doc["mode"] = Json(mode);
  doc["seed"] = Json(static_cast<std::int64_t>(opts.seed));
  doc["workers"] = Json(opts.workers);
  doc["batch"] = Json(opts.batch);
  doc["monitors"] = Json(opts.monitors);
  doc["shrink"] = Json(opts.shrink);
  doc["mutate"] = Json(opts.mutate);
  doc["elapsed_s"] = Json(stats.elapsed_s);
  doc["plans"] = Json(stats.plans);
  doc["plans_per_s"] = Json(stats.elapsed_s > 0 ? static_cast<double>(stats.plans) / stats.elapsed_s
                                                : 0.0);
  doc["clean"] = Json(stats.clean);
  doc["violations"] = Json(stats.violations);
  doc["novel"] = Json(stats.novel);
  doc["duplicates"] = Json(stats.duplicates);
  doc["shrunk"] = Json(stats.shrunk);
  doc["shrink_replays_ok"] = Json(stats.shrink_replays_ok);
  doc["mutated"] = Json(stats.mutated);
  doc["external"] = Json(stats.external);
  doc["coverage_sigs"] = Json(stats.coverage_sigs);
  doc["total_steps"] = Json(stats.total_steps);
  doc["batches"] = Json(stats.batches);
  doc["drained"] = Json(stats.drained);
  Json corpus = Json::object();
  corpus["dir"] = Json(opts.corpus_dir);
  corpus["size"] = Json(static_cast<std::int64_t>(stats.corpus_size));
  corpus["aliases"] = Json(static_cast<std::int64_t>(stats.corpus_aliases));
  corpus["seeded"] = Json(stats.corpus_seeded);
  corpus["quarantined"] = Json(stats.quarantined);
  doc["corpus"] = std::move(corpus);
  Json targets = Json::array();
  for (const auto& t : stats.targets) {
    Json e = Json::object();
    e["target"] = Json(t.target);
    e["expect_clean"] = Json(t.expect_clean);
    e["plans"] = Json(t.plans);
    e["clean"] = Json(t.clean);
    e["safety_violations"] = Json(t.safety_violations);
    e["wait_free_violations"] = Json(t.wait_free_violations);
    e["novel"] = Json(t.novel);
    e["duplicates"] = Json(t.duplicates);
    e["starvation_observations"] = Json(t.starvation_observations);
    e["coverage_sigs"] = Json(t.coverage_sigs);
    e["mutated"] = Json(t.mutated);
    e["external"] = Json(t.external);
    e["total_steps"] = Json(t.total_steps);
    targets.push_back(std::move(e));
  }
  doc["targets"] = std::move(targets);
  return doc;
}

telemetry::Json campaign_json(const std::vector<CampaignRun>& runs, const CampaignOptions& opts) {
  using telemetry::Json;
  Json doc = Json::object();
  doc["schema"] = Json("efd-campaign-v1");
  doc["experiment"] = Json("campaign");
  doc["git"] = Json(telemetry::git_describe());
  doc["seed"] = Json(static_cast<std::int64_t>(opts.seed));
  doc["plans_per_target"] = Json(opts.plans);
  doc["monitors"] = Json(opts.monitors);
  Json targets = Json::array();
  for (const auto& r : runs) {
    Json t = Json::object();
    t["target"] = Json(r.target);
    t["scenario"] = Json(r.scenario);
    t["algorithm"] = Json(r.algorithm);
    t["expect_clean"] = Json(r.expect_clean);
    t["verdict_ok"] = Json(r.verdict_ok());
    t["plans"] = Json(r.plans);
    t["clean_plans"] = Json(r.clean_plans);
    t["violations"] = Json(static_cast<std::int64_t>(r.violations.size()));
    t["safety_violations"] = Json(r.safety_violations());
    t["wait_free_violations"] = Json(r.wait_free_violations());
    t["starvation_observations"] = Json(r.starvation_observations);
    Json mix = Json::object();
    mix["fd_fault"] = Json(r.plans_with_fd_fault);
    mix["storm"] = Json(r.plans_with_storm);
    mix["trigger"] = Json(r.plans_with_trigger);
    mix["burst"] = Json(r.plans_with_burst);
    mix["link"] = Json(r.plans_with_link);
    t["plan_mix"] = std::move(mix);
    t["total_steps"] = Json(r.total_steps);
    t["rehearsal_steps"] = Json(r.rehearsal_steps);
    t["monitored_steps"] = Json(r.monitored_steps);
    t["max_own_steps_to_decide"] = Json(r.max_own_steps_to_decide);
    Json viols = Json::array();
    for (const auto& v : r.violations) {
      Json e = Json::object();
      e["plan_seed"] = Json(static_cast<std::int64_t>(v.plan_seed));
      e["plan"] = Json(v.plan);
      e["safety"] = Json(v.safety);
      e["wait_free"] = Json(v.wait_free);
      e["detail"] = Json(v.detail);
      e["tape_steps"] = Json(v.tape_steps);
      e["shrunk_steps"] = Json(v.shrunk_steps);
      e["shrunk_replay_ok"] = Json(v.shrunk_replay_ok);
      e["tape"] = Json(v.tape_path);
      viols.push_back(std::move(e));
    }
    t["violation_list"] = std::move(viols);
    targets.push_back(std::move(t));
  }
  doc["targets"] = std::move(targets);
  return doc;
}

}  // namespace efd
