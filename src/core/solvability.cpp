#include "core/solvability.hpp"

#include <unordered_set>

#include "fd/detectors.hpp"

namespace efd {
namespace {

/// Everything the DFS needs to know about a replayed prefix.
struct ReplayInfo {
  std::vector<int> eligible;   ///< admitted, undecided C-indices (the window)
  bool terminal = false;       ///< everyone arrived and decided
  bool relation_ok = true;
  std::uint64_t sig = 0;       ///< full-configuration signature
};

class Explorer {
 public:
  Explorer(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
           const ValueVec& inputs, const ExploreConfig& cfg)
      : task_(task), body_(body), inputs_(inputs), cfg_(cfg) {}

  ExploreOutcome run() {
    std::vector<int> sched;
    dfs(sched);
    return out_;
  }

 private:
  /// Deterministically replays `sched` (a sequence of C-index choices) and
  /// summarizes the resulting configuration.
  ReplayInfo replay(const std::vector<int>& sched) {
    World w = World::failure_free(1);
    for (int i : cfg_.arrival) {
      w.spawn_c(i, body_(i, inputs_[static_cast<std::size_t>(i)]));
    }

    // Admission bookkeeping mirrors KConcurrencyScheduler.
    std::size_t next_arrival = 0;
    std::vector<int> active;
    auto refresh = [&] {
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&w](int i) { return w.decided(cpid(i)); }),
                   active.end());
      while (next_arrival < cfg_.arrival.size() && static_cast<int>(active.size()) < cfg_.k) {
        active.push_back(cfg_.arrival[next_arrival++]);
      }
    };
    refresh();

    // Per-process signature: fold the result of every delivered step.
    std::vector<std::uint64_t> proc_sig(static_cast<std::size_t>(task_->n_procs()),
                                        1469598103934665603ULL);
    w.enable_trace();
    for (int c : sched) {
      w.step(cpid(c));
      refresh();
    }
    for (const auto& s : w.trace()) {
      auto& h = proc_sig[static_cast<std::size_t>(s.pid.index)];
      h = h * 1099511628211ULL + s.result.hash() + static_cast<std::uint64_t>(s.op);
    }

    ReplayInfo info;
    info.eligible = active;
    info.terminal = next_arrival == cfg_.arrival.size() && active.empty();
    ValueVec outs = w.output_vector();
    outs.resize(static_cast<std::size_t>(task_->n_procs()));
    info.relation_ok = task_->relation(inputs_, outs);
    std::uint64_t sig = w.memory().content_hash();
    for (std::size_t i = 0; i < proc_sig.size(); ++i) {
      sig = sig * 1099511628211ULL + proc_sig[i] + (w.exists(cpid(static_cast<int>(i))) &&
                                                    w.decided(cpid(static_cast<int>(i)))
                                                        ? 7919u
                                                        : 0u);
    }
    sig = sig * 1099511628211ULL + static_cast<std::uint64_t>(next_arrival);
    info.sig = sig;
    return info;
  }

  void dfs(std::vector<int>& sched) {
    if (!out_.ok || out_.budget_exhausted) return;
    if (++out_.states > cfg_.max_states) {
      out_.budget_exhausted = true;
      return;
    }
    const ReplayInfo info = replay(sched);
    if (!info.relation_ok) {
      out_.ok = false;
      out_.violation = "task relation violated";
      out_.bad_schedule = sched;
      return;
    }
    if (info.terminal) {
      ++out_.terminal_runs;
      return;
    }
    if (static_cast<int>(sched.size()) >= cfg_.max_depth) {
      out_.ok = false;
      out_.violation = "no decision within step bound (possible non-termination)";
      out_.bad_schedule = sched;
      return;
    }
    if (cfg_.dedup && !visited_.insert(info.sig).second) return;
    for (int c : info.eligible) {
      sched.push_back(c);
      dfs(sched);
      sched.pop_back();
      if (!out_.ok || out_.budget_exhausted) return;
    }
  }

  TaskPtr task_;
  const std::function<ProcBody(int, Value)>& body_;
  ValueVec inputs_;
  ExploreConfig cfg_;
  ExploreOutcome out_;
  std::unordered_set<std::uint64_t> visited_;
};

}  // namespace

ExploreOutcome explore_k_concurrent(const TaskPtr& task,
                                    const std::function<ProcBody(int, Value)>& body,
                                    const ValueVec& inputs, const ExploreConfig& cfg) {
  return Explorer(task, body, inputs, cfg).run();
}

int max_clean_level(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
                    const ValueVec& inputs, int k_max, ExploreConfig base_cfg) {
  if (base_cfg.arrival.empty()) {
    base_cfg.arrival = Task::participants(inputs);
  }
  int best = 0;
  for (int k = 1; k <= k_max; ++k) {
    ExploreConfig cfg = base_cfg;
    cfg.k = k;
    const ExploreOutcome o = explore_k_concurrent(task, body, inputs, cfg);
    if (!o.ok) break;
    best = k;
    if (o.budget_exhausted) break;  // cannot certify higher levels
  }
  return best;
}

}  // namespace efd
