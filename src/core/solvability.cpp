#include "core/solvability.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <utility>

#include "core/diskset.hpp"
#include "core/sigset.hpp"
#include "core/workpool.hpp"
#include "sim/schedule.hpp"

namespace efd {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kDecidedSalt = 7919u;

/// splitmix64 finalizer: avalanches a per-process step chain before it
/// enters the cross-process fold. Without it the node signature is linear
/// in the per-process chains over the SAME prime as the per-step fold, so
/// it degenerates to a hash of the concatenated traces: the process
/// boundary contributes only kFnvOffset * prime^(steps_i + procs - i),
/// and that multiset collides whenever two schedules swap step counts
/// between processes whose step contributions are identical (e.g. writes,
/// which fold Nil + op regardless of address or value). Observed in the
/// wild: schedules 0,1,1,1,1 and 1,1,0,0,0 of the set-agreement solver
/// produced equal signatures for genuinely different configurations,
/// silently merging their subtrees. Mixing makes the outer fold see
/// avalanche-distinct summaries, destroying the structural cancellation.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// The world an engine explores in: the configured factory (substrate
/// installs, MP worlds) or the legacy pure-register default.
World make_explore_world(const ExploreConfig& cfg) {
  return cfg.world_factory ? cfg.world_factory() : World::failure_free(1);
}

// ---------------------------------------------------------------------------
// Budget + dedup context: the one piece of exploration state that is shared
// when the frontier is sharded over threads. The sequential variant keeps the
// hot path free of atomics; the parallel variant is the only cross-thread
// state the workers touch (see DESIGN.md for why the clean-sweep outcome is
// nevertheless thread-count-invariant).
// ---------------------------------------------------------------------------

class ExploreContext {
 public:
  virtual ~ExploreContext() = default;
  /// Counts one state against the budget; false once the budget is exceeded
  /// (the over-budget state is still counted, matching the legacy engine).
  virtual bool charge() = 0;
  /// Dedup insert; true iff `sig` was unseen. First insert wins.
  virtual bool visit(std::uint64_t sig) = 0;
  virtual bool stopped() const = 0;
  virtual void stop() = 0;
  virtual std::int64_t states() const = 0;
  virtual bool exhausted() const = 0;
  /// True once the dedup store hit its memory cap with no disk tier — the
  /// sweep is aborted (charge() starts failing) and certifies nothing.
  virtual bool mem_exhausted() const = 0;
  /// The tiered store, when one is configured (nullptr = plain legacy set).
  virtual const TieredSigSet* store() const = 0;
  /// Dedup traffic so far: (lookups, first-inserts). For fully-covered clean
  /// sweeps both are engine- and thread-count-invariant (unique signatures
  /// are expanded exactly once, so lookup multiplicity is state-determined).
  virtual std::pair<std::int64_t, std::int64_t> dedup_traffic() const = 0;
};

class SequentialContext final : public ExploreContext {
 public:
  SequentialContext(std::int64_t max_states, const DedupConfig& store)
      : max_states_(max_states),
        tiered_(store.plain() ? nullptr : std::make_unique<TieredSigSet>(store)) {}
  bool charge() override {
    // A memory-capped store that overflowed with no disk tier aborts the
    // sweep the same way max_states does: the result is a lower bound.
    if (tiered_ != nullptr && tiered_->mem_exhausted()) {
      exhausted_ = true;
      return false;
    }
    if (++states_ > max_states_) {
      exhausted_ = true;
      return false;
    }
    return true;
  }
  bool visit(std::uint64_t sig) override {
    ++queries_;
    const bool fresh = tiered_ != nullptr ? tiered_->insert(sig) : visited_.insert(sig);
    misses_ += fresh ? 1 : 0;
    return fresh;
  }
  bool stopped() const override { return stop_; }
  void stop() override { stop_ = true; }
  std::int64_t states() const override { return states_; }
  bool exhausted() const override { return exhausted_; }
  bool mem_exhausted() const override {
    return tiered_ != nullptr && tiered_->mem_exhausted();
  }
  const TieredSigSet* store() const override { return tiered_.get(); }
  std::pair<std::int64_t, std::int64_t> dedup_traffic() const override {
    return {queries_, misses_};
  }

 private:
  std::int64_t max_states_;
  std::int64_t states_ = 0;
  std::int64_t queries_ = 0;
  std::int64_t misses_ = 0;
  bool stop_ = false;
  bool exhausted_ = false;
  FlatSigSet visited_;  ///< flat probing set: no node alloc per insert
  std::unique_ptr<TieredSigSet> tiered_;  ///< replaces visited_ when configured
};

class ParallelContext final : public ExploreContext {
 public:
  ParallelContext(std::int64_t max_states, const DedupConfig& store)
      : max_states_(max_states),
        plain_(store.plain() ? std::make_unique<ShardedSigSet>() : nullptr),
        tiered_(store.plain() ? nullptr : std::make_unique<TieredSigSet>(store)) {}
  bool charge() override {
    if (tiered_ != nullptr && tiered_->mem_exhausted()) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (states_.fetch_add(1, std::memory_order_relaxed) + 1 > max_states_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  bool visit(std::uint64_t sig) override {
    queries_.fetch_add(1, std::memory_order_relaxed);
    const bool fresh = tiered_ != nullptr ? tiered_->insert(sig) : plain_->insert(sig);
    if (fresh) misses_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
  }
  bool stopped() const override { return stop_.load(std::memory_order_acquire); }
  void stop() override { stop_.store(true, std::memory_order_release); }
  std::int64_t states() const override { return states_.load(std::memory_order_relaxed); }
  bool exhausted() const override { return exhausted_.load(std::memory_order_relaxed); }
  bool mem_exhausted() const override {
    return tiered_ != nullptr && tiered_->mem_exhausted();
  }
  const TieredSigSet* store() const override { return tiered_.get(); }
  std::pair<std::int64_t, std::int64_t> dedup_traffic() const override {
    return {queries_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed)};
  }

 private:
  std::int64_t max_states_;
  std::atomic<std::int64_t> states_{0};
  std::atomic<std::int64_t> queries_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> exhausted_{false};
  // Exactly one of these is live: the plain set keeps the legacy workloads
  // free of tier bookkeeping; the tiered store carries budget + disk spill.
  std::unique_ptr<ShardedSigSet> plain_;
  std::unique_ptr<TieredSigSet> tiered_;
};

/// Fills the context-derived fields of `stats` at the end of a sweep.
void harvest_context(ExploreStats& stats, const ExploreContext& ctx, int threads,
                     double elapsed_s) {
  stats.states = ctx.states();
  const auto [queries, misses] = ctx.dedup_traffic();
  stats.dedup_queries = queries;
  stats.dedup_misses = misses;
  stats.dedup_hits = queries - misses;
  stats.threads = threads;
  stats.elapsed_s = elapsed_s;
  stats.states_per_s = elapsed_s > 0 ? static_cast<double>(stats.states) / elapsed_s : 0;
  stats.mem_exhausted = ctx.mem_exhausted();
  if (const TieredSigSet* store = ctx.store()) {
    const TierStats t = store->tier_stats();
    stats.dedup_recent_hits = t.recent_hits;
    stats.dedup_mem_hits = t.mem_hits;
    stats.dedup_cold_probes = t.cold_probes;
    stats.dedup_bloom_skips = t.bloom_skips;
    stats.dedup_cold_hits = t.cold_hits;
    stats.dedup_spills = t.spills;
    stats.dedup_spilled_sigs = t.spilled_sigs;
    stats.dedup_spill_bytes = t.spill_bytes;
    stats.dedup_merges = t.merges;
  }
}

// ---------------------------------------------------------------------------
// Incremental engine: one persistent World, one real step per DFS edge, an
// exact undo log per edge for backtracking.
//
// Everything copyable is undone exactly: the touched memory cell (value +
// written flag, via RegisterFile::undo_write), the per-process signature
// chain, decision/termination flags, the output vector, and the admission
// window. The one thing that cannot be undone is the coroutine frame itself
// — frames only run forward — so popping an edge merely marks its process
// DIRTY (coroutine one step ahead of the logical position). The next time a
// dirty process is scheduled it is respawned and fast-forwarded by
// redelivering its logged step results; deterministic replay guarantees the
// rebuilt frame is indistinguishable from one that never ran ahead. A
// process that is never scheduled again is never rebuilt, which is what
// makes the amortized cost per edge O(1): sibling subtrees of process c
// rebuild only c.
//
// World time (`now_`) keeps advancing across backtracks. That is sound here
// because explored algorithms are RESTRICTED and the world failure-free:
// C-processes never query the failure detector, so no observable value
// depends on model time.
// ---------------------------------------------------------------------------

class IncrementalExplorer {
 public:
  IncrementalExplorer(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
                      const ValueVec& inputs, const ExploreConfig& cfg, ExploreContext& ctx)
      : task_(task),
        body_(body),
        inputs_(inputs),
        cfg_(cfg),
        ctx_(ctx),
        w_(make_explore_world(cfg)),
        window_(cfg.k, cfg.arrival),
        mp_(w_.substrate_set()) {
    const std::size_t n = static_cast<std::size_t>(task_->n_procs());
    proc_sig_.assign(n, kFnvOffset);
    decided_.assign(n, 0);
    terminated_.assign(n, 0);
    exists_.assign(n, 0);
    outs_.resize(n);
    proc_log_.resize(n);
    ghost_.resize(n);
    bodies_.resize(n);
    for (int i : cfg_.arrival) {
      const auto ii = static_cast<std::size_t>(i);
      // Cache the ProcBody once per process: every respawn reuses it instead
      // of manufacturing a fresh std::function through the factory.
      bodies_[ii] = body_(i, inputs_[ii]);
      w_.spawn_c(i, bodies_[ii]);
      exists_[ii] = 1;
    }
    if (cfg_.threads <= 1) w_.attach_observer(cfg_.observer);
    relation_ok_ = task_->relation(inputs_, outs_);
    window_.refresh([this](int c) { return finished(c); });
  }

  /// Full DFS from the current configuration (entry bookkeeping included).
  void dfs() {
    if (enter_node() != Node::kExpand) return;
    // window_.active() mutates below; snapshot it onto the shared scratch
    // stack (index-based: recursion may grow/reallocate it) instead of a
    // fresh vector per node.
    const std::size_t base = elig_stack_.size();
    push_eligible_children(elig_stack_);
    const std::size_t top = elig_stack_.size();
    for (std::size_t j = base; j < top; ++j) {
      if (ctx_.stopped()) break;
      const int c = elig_stack_[j];
      push_step(c);
      dfs();
      pop_step();
    }
    elig_stack_.resize(base);
  }

  /// Advances to `prefix` WITHOUT entry bookkeeping (used by parallel
  /// workers: the frontier expansion already accounted for the ancestors).
  void seek(const std::vector<int>& prefix) {
    for (int c : prefix) push_step(c);
  }

  /// Repositions the world at `prefix`, backtracking only past the common
  /// ancestor (frontier expansion visits prefixes in near-sibling order).
  void move_to(const std::vector<int>& prefix) {
    std::size_t common = 0;
    while (common < prefix.size() && common < sched_.size() &&
           sched_[common] == prefix[common]) {
      ++common;
    }
    while (sched_.size() > common) pop_step();
    for (std::size_t i = common; i < prefix.size(); ++i) push_step(prefix[i]);
  }

  enum class Node { kPruned, kExpand };

  /// Entry bookkeeping for the current configuration, in the same order as
  /// the reference engine: budget → relation → terminal → depth → dedup.
  Node enter_node() {
    if (!ctx_.charge()) {
      out_.budget_exhausted = true;
      ctx_.stop();
      return Node::kPruned;
    }
    // relation(inputs_, outs_) is a pure predicate and outs_ only changes on
    // decide edges, so the verdict is cached there instead of being
    // recomputed at every node (it dominated enter_node: two sorted
    // distinct-value vectors per call on the set-agreement family).
    if (!relation_ok_) {
      fail("task relation violated");
      return Node::kPruned;
    }
    if (window_.exhausted()) {
      ++out_.terminal_runs;
      return Node::kPruned;
    }
    if (static_cast<int>(sched_.size()) >= cfg_.max_depth) {
      fail("no decision within step bound (possible non-termination)");
      return Node::kPruned;
    }
    if (cfg_.dedup && !ctx_.visit(sig())) return Node::kPruned;
    return Node::kExpand;
  }

  [[nodiscard]] const std::vector<int>& active() const noexcept { return window_.active(); }
  [[nodiscard]] const std::vector<int>& sched() const noexcept { return sched_; }
  ExploreOutcome take_outcome() { return std::move(out_); }

  /// Eligible successors of the current configuration: the admission window
  /// filtered by the blocking-recv rule (substrate worlds). Counts a blocked
  /// dead end like dfs() would — used by the parallel frontier expansion so
  /// probe and workers agree with the sequential engine node for node.
  [[nodiscard]] std::vector<int> eligible_children() {
    std::vector<int> out;
    push_eligible_children(out);
    return out;
  }

 private:
  /// One DFS edge of the undo log.
  struct PathStep {
    int c = 0;
    OpKind op = OpKind::kYield;
    RegAddr addr;                ///< write target (op == kWrite only)
    Value prev_value;            ///< cell content before the write
    bool prev_written = false;
    std::uint64_t prev_proc_sig = 0;
    bool became_decided = false;
    bool became_terminated = false;
    bool prev_relation_ok = true;  ///< relation verdict before this decide edge
    AdmissionWindow::RefreshUndo win_undo;  ///< delta, not a window snapshot
  };

  /// One step a live coroutine frame consumed BEYOND the logical position
  /// (its edge was popped). Deterministic replay cuts both ways: if the next
  /// logical step of the process would deliver exactly `result` again, the
  /// ran-ahead frame is already in the correct post-step state, and the step
  /// can be applied world-side only — no respawn, no replay, no resume.
  /// Everything here is a pure function of the process's consumed-result
  /// prefix, which is what makes the reuse sound.
  struct GhostStep {
    OpKind op = OpKind::kYield;
    RegAddr addr;           ///< op target (kRead/kWrite)
    Value result;           ///< result the frame consumed at this position
    Value value;            ///< written value (kWrite) / decision (kDecide)
    bool decided = false;   ///< this step recorded the first decision
    bool terminated = false;///< this step completed the coroutine
  };

  [[nodiscard]] bool finished(int c) const {
    const auto i = static_cast<std::size_t>(c);
    return decided_[i] != 0 || terminated_[i] != 0;
  }

  /// BLOCKING recv: true iff scheduling c now would execute a recv on an
  /// empty mailbox. Exploration never schedules such a step — otherwise a
  /// poll loop (recv-Nil-retry) makes every MP protocol a spurious
  /// step-bound violation, exactly the busy-waiting the paper's wait-free
  /// notion abstracts away. A dirty process (frame ran ahead) is judged by
  /// its next ghost step, never by w_'s pending op — the frame is past the
  /// logical position and its pending op belongs to a future configuration.
  [[nodiscard]] bool blocked(int c) {
    const auto i = static_cast<std::size_t>(c);
    OpKind op;
    RegAddr addr;
    if (!ghost_[i].empty()) {
      const GhostStep& gs = ghost_[i].back();
      op = gs.op;
      addr = gs.addr;
    } else {
      const PendingOp* p = w_.pending_op(cpid(c));
      if (p == nullptr) return false;
      op = p->kind;
      addr = p->addr;
    }
    if (op != OpKind::kRecv) return false;
    return w_.substrate().peek_recv(w_.memory(), addr).is_nil();
  }

  /// Appends the eligible successors of the current configuration: the
  /// admission window, minus blocked-recv processes when a substrate is
  /// installed (pure register worlds keep the zero-overhead copy). A node
  /// whose window is live but fully blocked is a DEAD END, not a terminal
  /// run: nobody can move, nobody has violated anything — counted so
  /// cross-backend runs can assert they agree on blocking structure.
  void push_eligible_children(std::vector<int>& out) {
    if (!mp_) {
      out.insert(out.end(), window_.active().begin(), window_.active().end());
      return;
    }
    const std::size_t base = out.size();
    for (int c : window_.active()) {
      if (!blocked(c)) out.push_back(c);
    }
    if (out.size() == base && !window_.active().empty()) ++out_.blocked_runs;
  }

  /// Rebuilds c's coroutine at the logical position if it ran ahead
  /// (non-empty ghost log = frame consumed results beyond the position).
  void ensure_fresh(int c) {
    const auto i = static_cast<std::size_t>(c);
    if (ghost_[i].empty()) return;
    ghost_[i].clear();
    w_.respawn(cpid(c), bodies_[i]);
    ++out_.stats.respawns;
    w_.redeliver_all(cpid(c), proc_log_[i]);
    out_.stats.redelivers += static_cast<std::int64_t>(proc_log_[i].size());
  }

  /// Fast path of push_step: the frame ran ahead, and its next ghost step
  /// would consume exactly the result the current configuration delivers.
  /// Applies the step's world-side effects (memory write, flags, window)
  /// and reclaims the ghost entry; the frame itself is already past the
  /// step. Returns false (leaving no side effects) when the results
  /// diverge — the caller then respawns and replays as usual.
  bool try_ghost_step(int c) {
    const auto i = static_cast<std::size_t>(c);
    const GhostStep& gs = ghost_[i].back();
    if (gs.op == OpKind::kSend || gs.op == OpKind::kRecv || gs.op == OpKind::kDeliver) {
      // Substrate ops mutate fabric/mailbox state through the substrate, not
      // a single register cell; replaying them world-side only would need the
      // substrate's mutation AND a proof the consumed result still matches.
      // Rare on the explored (eager, blocking-recv) tree — always respawn.
      return false;
    }
    Value result;
    if (gs.op == OpKind::kRead) {
      result = w_.memory().read(gs.addr);
      if (result != gs.result) return false;
    } else if (gs.op == OpKind::kQuery) {
      return false;  // FD answers are time-dependent; never ghost-replayed
    }
    // Non-read ops deliver Nil, which trivially matches the ghost.
    PathStep& ps = path_.emplace_back();
    ps.c = c;
    ps.op = gs.op;
    ps.addr = gs.addr;
    ps.prev_proc_sig = proc_sig_[i];
    if (gs.op == OpKind::kWrite) {
      ps.prev_written = w_.memory().written(gs.addr);
      if (ps.prev_written) ps.prev_value = w_.memory().read(gs.addr);
      w_.memory().write(gs.addr, gs.value);
    }
    proc_log_[i].push_back(result);
    proc_sig_[i] = proc_sig_[i] * kFnvPrime + result.hash() + static_cast<std::uint64_t>(ps.op);
    if (gs.decided && decided_[i] == 0) {
      ps.became_decided = true;
      decided_[i] = 1;
      outs_[i] = gs.value;
      ps.prev_relation_ok = relation_ok_;
      relation_ok_ = task_->relation(inputs_, outs_);
    }
    if (gs.terminated) {
      ps.became_terminated = true;
      terminated_[i] = 1;
    }
    if (StepObserver* obs = w_.observer()) {
      // Same signature World::step would have reported for this step.
      obs->on_step(cpid(c), gs.op, false, gs.op == OpKind::kDecide, gs.terminated);
    }
    ghost_[i].pop_back();
    ++out_.stats.ghost_hits;
    window_.refresh_tracked([this](int cc) { return finished(cc); }, ps.win_undo);
    sched_.push_back(c);
    out_.stats.max_undo_depth =
        std::max(out_.stats.max_undo_depth, static_cast<std::int64_t>(path_.size()));
    return true;
  }

  void push_step(int c) {
    const auto i = static_cast<std::size_t>(c);
    if (!ghost_[i].empty() && try_ghost_step(c)) return;
    ensure_fresh(c);
    const PendingOp* op = w_.pending_op(cpid(c));
    if (op == nullptr) {
      throw std::logic_error("IncrementalExplorer: scheduled a finished process");
    }
    PathStep& ps = path_.emplace_back();  // filled in place; popped on undo
    ps.c = c;
    ps.op = op->kind;
    ps.prev_proc_sig = proc_sig_[i];
    Value result;  // what the step delivers back (mirrors World::step)
    if (op->kind == OpKind::kRead) {
      ps.addr = op->addr;  // kept so a popped edge can become a ghost step
      result = w_.memory().read(op->addr);
    } else if (op->kind == OpKind::kWrite) {
      ps.addr = op->addr;
      ps.prev_written = w_.memory().written(op->addr);
      if (ps.prev_written) ps.prev_value = w_.memory().read(op->addr);
    } else if (op->kind == OpKind::kSend || op->kind == OpKind::kRecv) {
      // Substrate ops touch exactly one mailbox cell; snapshot it through
      // the substrate (fabric pending queue or backing register — the
      // substrate knows which) so pop_step can restore it exactly.
      ps.addr = op->addr;
      ps.prev_written = w_.substrate().cell_state(w_.memory(), op->addr, ps.prev_value);
      if (op->kind == OpKind::kRecv) {
        result = w_.substrate().peek_recv(w_.memory(), op->addr);
      }
    }
    w_.step(cpid(c));  // executes exactly `op`
    proc_log_[i].push_back(result);
    proc_sig_[i] = proc_sig_[i] * kFnvPrime + result.hash() + static_cast<std::uint64_t>(ps.op);
    if (decided_[i] == 0 && w_.decided(cpid(c))) {
      ps.became_decided = true;
      decided_[i] = 1;
      outs_[i] = w_.decision(cpid(c));
      ps.prev_relation_ok = relation_ok_;
      relation_ok_ = task_->relation(inputs_, outs_);
    }
    if (terminated_[i] == 0 && w_.terminated(cpid(c))) {
      ps.became_terminated = true;
      terminated_[i] = 1;
    }
    window_.refresh_tracked([this](int cc) { return finished(cc); }, ps.win_undo);
    sched_.push_back(c);
    out_.stats.max_undo_depth =
        std::max(out_.stats.max_undo_depth, static_cast<std::int64_t>(path_.size()));
  }

  void pop_step() {
    PathStep& ps = path_.back();
    sched_.pop_back();
    const auto i = static_cast<std::size_t>(ps.c);
    window_.unrefresh(ps.win_undo);
    proc_sig_[i] = ps.prev_proc_sig;
    // The frame stays one step ahead; record what it consumed so a future
    // push of this process can reuse it instead of respawning (ghost path).
    GhostStep gs;
    gs.op = ps.op;
    gs.addr = ps.addr;
    gs.result = std::move(proc_log_[i].back());
    gs.decided = ps.became_decided;
    gs.terminated = ps.became_terminated;
    if (ps.op == OpKind::kWrite) gs.value = w_.memory().read(ps.addr);
    if (ps.became_decided) {
      gs.value = outs_[i];
      decided_[i] = 0;
      outs_[i] = Value{};
      relation_ok_ = ps.prev_relation_ok;
    }
    if (ps.became_terminated) terminated_[i] = 0;
    if (ps.op == OpKind::kWrite) {
      w_.memory().undo_write(ps.addr, ps.prev_value, ps.prev_written);
    } else if (ps.op == OpKind::kSend || ps.op == OpKind::kRecv) {
      w_.substrate().restore_cell(w_.memory(), ps.addr, ps.prev_value, ps.prev_written);
    }
    proc_log_[i].pop_back();
    ghost_[i].push_back(std::move(gs));
    path_.pop_back();  // invalidates ps — must stay last
  }

  /// Full-configuration signature; identical formula to the reference
  /// engine's (shared-state hash — registers plus substrate-held mailbox
  /// state, byte-identical across backends holding the same contents —
  /// per-process step-result chains, decided salts, admission progress).
  [[nodiscard]] std::uint64_t sig() const {
    std::uint64_t s = w_.state_hash();
    for (std::size_t i = 0; i < proc_sig_.size(); ++i) {
      s = s * kFnvPrime + mix64(proc_sig_[i]) +
          (exists_[i] != 0 && decided_[i] != 0 ? kDecidedSalt : 0u);
    }
    s = s * kFnvPrime + static_cast<std::uint64_t>(window_.next_arrival());
    return s;
  }

  void fail(const char* msg) {
    out_.ok = false;
    out_.violation = msg;
    out_.bad_schedule = sched_;
    ctx_.stop();
  }

  TaskPtr task_;
  const std::function<ProcBody(int, Value)>& body_;
  ValueVec inputs_;
  ExploreConfig cfg_;
  ExploreContext& ctx_;
  ExploreOutcome out_;

  World w_;
  AdmissionWindow window_;
  /// Substrate installed at construction → blocking-recv eligibility filter.
  /// Latched ONCE: a world that lazily grows a default substrate mid-sweep
  /// (bodies sending without a factory install) keeps the unfiltered rule
  /// for the whole sweep, so eligibility stays configuration-deterministic.
  bool mp_;
  std::vector<int> sched_;
  std::vector<PathStep> path_;
  std::vector<int> elig_stack_;   ///< dfs eligibility snapshots, all depths
  std::vector<ProcBody> bodies_;  ///< cached per-process bodies (respawn)

  // Logical (undo-tracked) per-process state; w_'s own flags lag behind for
  // dirty processes, so the engine never consults them outside push_step.
  std::vector<std::uint64_t> proc_sig_;
  std::vector<std::uint8_t> decided_;
  std::vector<std::uint8_t> terminated_;
  std::vector<std::uint8_t> exists_;
  ValueVec outs_;
  bool relation_ok_ = true;  ///< cached task_->relation(inputs_, outs_)
  std::vector<std::vector<Value>> proc_log_;  ///< delivered results, per process
  // Per process: results its live frame consumed beyond the logical position,
  // innermost last. Invariant: concat(proc_log_[i], reverse(ghost_[i])) is
  // exactly the prefix the frame has consumed; LIFO push/pop preserves it.
  std::vector<std::vector<GhostStep>> ghost_;
};

// ---------------------------------------------------------------------------
// Reference engine: fresh world + full prefix replay per node. Kept as the
// semantic baseline the incremental engine is tested against.
// ---------------------------------------------------------------------------

class FullReplayExplorer {
 public:
  FullReplayExplorer(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
                     const ValueVec& inputs, const ExploreConfig& cfg, ExploreContext& ctx)
      : task_(task), body_(body), inputs_(inputs), cfg_(cfg), ctx_(ctx) {
    bodies_.resize(static_cast<std::size_t>(task_->n_procs()));
    for (int i : cfg_.arrival) {
      const auto ii = static_cast<std::size_t>(i);
      bodies_[ii] = body_(i, inputs_[ii]);
    }
  }

  void dfs() {
    std::vector<int> sched;
    dfs(sched);
  }

  ExploreOutcome take_outcome() { return std::move(out_); }

 private:
  struct ReplayInfo {
    std::vector<int> eligible;  ///< admission window after the prefix, minus
                                ///< blocked-recv processes (substrate worlds)
    bool blocked = false;       ///< window live but every process blocked
    bool terminal = false;      ///< everyone arrived and finished
    bool relation_ok = true;
    std::uint64_t sig = 0;      ///< full-configuration signature
  };

  /// Deterministically replays `sched` (a sequence of C-index choices) and
  /// summarizes the resulting configuration.
  ReplayInfo replay(const std::vector<int>& sched) {
    World w = make_explore_world(cfg_);
    for (int i : cfg_.arrival) {
      w.spawn_c(i, bodies_[static_cast<std::size_t>(i)]);
    }
    w.attach_observer(cfg_.observer);
    AdmissionWindow win(cfg_.k, cfg_.arrival);
    win.refresh(w);

    // Per-process signature: fold the result of every delivered step.
    std::vector<std::uint64_t> proc_sig(static_cast<std::size_t>(task_->n_procs()), kFnvOffset);
    w.enable_trace();
    for (int c : sched) {
      w.step(cpid(c));
      win.refresh(w);
    }
    for (const auto& s : w.trace()) {
      auto& h = proc_sig[static_cast<std::size_t>(s.pid.index)];
      h = h * kFnvPrime + s.result.hash() + static_cast<std::uint64_t>(s.op);
    }

    ReplayInfo info;
    info.eligible = win.active();
    info.terminal = win.exhausted();
    if (w.substrate_set() && !info.eligible.empty()) {
      // Same blocking-recv rule as the incremental engine: frames here are
      // exactly at the logical position, so the pending op is authoritative.
      std::vector<int> elig;
      for (int c : info.eligible) {
        const PendingOp* op = w.pending_op(cpid(c));
        if (op != nullptr && op->kind == OpKind::kRecv &&
            w.substrate().peek_recv(w.memory(), op->addr).is_nil()) {
          continue;
        }
        elig.push_back(c);
      }
      info.blocked = elig.empty();
      info.eligible = std::move(elig);
    }
    ValueVec outs = w.output_vector();
    outs.resize(static_cast<std::size_t>(task_->n_procs()));
    info.relation_ok = task_->relation(inputs_, outs);
    std::uint64_t sig = w.state_hash();
    for (std::size_t i = 0; i < proc_sig.size(); ++i) {
      sig = sig * kFnvPrime + mix64(proc_sig[i]) +
            (w.exists(cpid(static_cast<int>(i))) && w.decided(cpid(static_cast<int>(i)))
                 ? kDecidedSalt
                 : 0u);
    }
    sig = sig * kFnvPrime + static_cast<std::uint64_t>(win.next_arrival());
    info.sig = sig;
    return info;
  }

  void dfs(std::vector<int>& sched) {
    if (ctx_.stopped()) return;
    if (!ctx_.charge()) {
      out_.budget_exhausted = true;
      ctx_.stop();
      return;
    }
    const ReplayInfo info = replay(sched);
    if (!info.relation_ok) {
      out_.ok = false;
      out_.violation = "task relation violated";
      out_.bad_schedule = sched;
      ctx_.stop();
      return;
    }
    if (info.terminal) {
      ++out_.terminal_runs;
      return;
    }
    if (static_cast<int>(sched.size()) >= cfg_.max_depth) {
      out_.ok = false;
      out_.violation = "no decision within step bound (possible non-termination)";
      out_.bad_schedule = sched;
      ctx_.stop();
      return;
    }
    if (cfg_.dedup && !ctx_.visit(info.sig)) return;
    if (info.blocked) {
      ++out_.blocked_runs;  // dead end: live window, all blocked on recv
      return;
    }
    for (int c : info.eligible) {
      sched.push_back(c);
      dfs(sched);
      sched.pop_back();
      if (ctx_.stopped()) return;
    }
  }

  TaskPtr task_;
  const std::function<ProcBody(int, Value)>& body_;
  ValueVec inputs_;
  ExploreConfig cfg_;
  ExploreContext& ctx_;
  ExploreOutcome out_;
  std::vector<ProcBody> bodies_;  ///< cached per-process bodies
};

// ---------------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------------

ExploreOutcome explore_sequential(const TaskPtr& task,
                                  const std::function<ProcBody(int, Value)>& body,
                                  const ValueVec& inputs, const ExploreConfig& cfg) {
  SequentialContext ctx(cfg.max_states, cfg.dedup_store);
  ExploreOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  if (cfg.engine == ExploreEngine::kFullReplay) {
    FullReplayExplorer e(task, body, inputs, cfg, ctx);
    e.dfs();
    out = e.take_outcome();
  } else {
    IncrementalExplorer e(task, body, inputs, cfg, ctx);
    e.dfs();
    out = e.take_outcome();
  }
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  out.states = ctx.states();
  if (ctx.exhausted()) out.budget_exhausted = true;
  if (ctx.mem_exhausted()) {
    out.mem_exhausted = true;
    out.budget_exhausted = true;
  }
  out.stats.terminal_runs = out.terminal_runs;
  out.stats.blocked_runs = out.blocked_runs;
  harvest_context(out.stats, ctx, /*threads=*/1, dt.count());
  return out;
}

/// Parallel frontier: a short deterministic sequential expansion splits the
/// tree into >= 4*threads un-entered subtree roots, which a work-stealing
/// pool then explores against a shared budget and a shared first-insert-wins
/// signature set. A CLEAN sweep's outcome is thread-count-invariant (the
/// expanded-signature closure does not depend on insertion races — DESIGN.md
/// gives the argument); any violation or budget exhaustion makes the
/// parallel numbers schedule-dependent, so those cases rerun the sequential
/// engine and return its canonical outcome — this doubles as the
/// "lexicographically smallest bad_schedule wins" merge rule, since
/// sequential DFS finds exactly that schedule first.
ExploreOutcome explore_parallel(const TaskPtr& task,
                                const std::function<ProcBody(int, Value)>& body,
                                const ValueVec& inputs, const ExploreConfig& cfg) {
  ParallelContext ctx(cfg.max_states, cfg.dedup_store);
  const std::size_t target = static_cast<std::size_t>(cfg.threads) * 4;
  const auto t0 = std::chrono::steady_clock::now();

  ExploreOutcome expansion_out;
  std::vector<std::vector<int>> roots;
  {
    IncrementalExplorer probe(task, body, inputs, cfg, ctx);
    std::deque<std::vector<int>> queue;
    queue.emplace_back();
    while (!queue.empty() && queue.size() < target && !ctx.stopped()) {
      std::vector<int> prefix = std::move(queue.front());
      queue.pop_front();
      probe.move_to(prefix);
      if (probe.enter_node() == IncrementalExplorer::Node::kExpand) {
        for (int c : probe.eligible_children()) {
          std::vector<int> child = prefix;
          child.push_back(c);
          queue.push_back(std::move(child));
        }
      }
    }
    expansion_out = probe.take_outcome();
    roots.assign(queue.begin(), queue.end());
  }

  std::vector<ExploreOutcome> parts(roots.size());
  PoolStats pool_stats;
  if (!ctx.stopped() && !roots.empty()) {
    std::vector<std::function<void()>> jobs;
    jobs.reserve(roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      jobs.push_back([&, i] {
        if (ctx.stopped()) return;
        IncrementalExplorer e(task, body, inputs, cfg, ctx);
        e.seek(roots[i]);
        e.dfs();
        parts[i] = e.take_outcome();
      });
    }
    WorkStealingPool::run(std::move(jobs), cfg.threads, &pool_stats);
  }

  bool clean = expansion_out.ok;
  for (const ExploreOutcome& p : parts) clean = clean && p.ok;
  if (!clean || ctx.exhausted()) {
    // Canonical deterministic outcome (identical to threads == 1).
    ExploreConfig seq = cfg;
    seq.threads = 1;
    return explore_sequential(task, body, inputs, seq);
  }

  ExploreOutcome out;
  out.terminal_runs = expansion_out.terminal_runs;
  out.blocked_runs = expansion_out.blocked_runs;
  out.stats = expansion_out.stats;  // probe respawns/redelivers/undo depth
  for (const ExploreOutcome& p : parts) {
    out.terminal_runs += p.terminal_runs;
    out.blocked_runs += p.blocked_runs;
    out.stats.max_undo_depth = std::max(out.stats.max_undo_depth, p.stats.max_undo_depth);
    out.stats.respawns += p.stats.respawns;
    out.stats.redelivers += p.stats.redelivers;
    out.stats.ghost_hits += p.stats.ghost_hits;
  }
  out.states = ctx.states();
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  out.stats.terminal_runs = out.terminal_runs;
  out.stats.blocked_runs = out.blocked_runs;
  out.stats.pool_steals = pool_stats.steals;
  harvest_context(out.stats, ctx, cfg.threads, dt.count());
  return out;
}

}  // namespace

ExploreOutcome explore_k_concurrent(const TaskPtr& task,
                                    const std::function<ProcBody(int, Value)>& body,
                                    const ValueVec& inputs, const ExploreConfig& cfg) {
  if (cfg.threads > 1 && cfg.engine == ExploreEngine::kIncremental) {
    return explore_parallel(task, body, inputs, cfg);
  }
  return explore_sequential(task, body, inputs, cfg);
}

CleanLevelResult max_clean_level(const TaskPtr& task,
                                 const std::function<ProcBody(int, Value)>& body,
                                 const ValueVec& inputs, int k_max, ExploreConfig base_cfg) {
  if (base_cfg.arrival.empty()) {
    base_cfg.arrival = Task::participants(inputs);
  }
  std::vector<ExploreOutcome> levels(static_cast<std::size_t>(std::max(k_max, 0)) + 1);
  std::vector<std::uint8_t> swept(levels.size(), 0);
  if (base_cfg.threads > 1 && k_max > 1) {
    // Levels are independent sweeps: run them concurrently, one per pool
    // task (each sweep itself sequential), then merge scanning upward.
    std::vector<std::function<void()>> jobs;
    for (int k = 1; k <= k_max; ++k) {
      jobs.push_back([&, k] {
        ExploreConfig cfg = base_cfg;
        cfg.k = k;
        cfg.threads = 1;
        levels[static_cast<std::size_t>(k)] = explore_k_concurrent(task, body, inputs, cfg);
        swept[static_cast<std::size_t>(k)] = 1;
      });
    }
    WorkStealingPool::run(std::move(jobs), base_cfg.threads);
  } else {
    for (int k = 1; k <= k_max; ++k) {
      ExploreConfig cfg = base_cfg;
      cfg.k = k;
      const std::size_t ki = static_cast<std::size_t>(k);
      levels[ki] = explore_k_concurrent(task, body, inputs, cfg);
      swept[ki] = 1;
      if (!levels[ki].ok || levels[ki].budget_exhausted) break;
    }
  }

  CleanLevelResult r;
  for (int k = 1; k <= k_max; ++k) {
    const std::size_t ki = static_cast<std::size_t>(k);
    if (swept[ki] == 0) break;  // sequential mode stopped below this level
    r.states += levels[ki].states;
    r.stats.merge(levels[ki].stats);
    if (!levels[ki].ok) break;
    if (levels[ki].budget_exhausted) {
      r.budget_exhausted = true;  // level k only sampled: r.level is a lower bound
      r.mem_exhausted = levels[ki].mem_exhausted;
      break;
    }
    r.level = k;
  }
  return r;
}

}  // namespace efd
