// The task hierarchy (Thm. 10): every task sits in class k = its maximal
// tolerated concurrency, and its weakest failure detector is ¬Ωk.
//
// The classifier measures, by exhaustive exploration (core/solvability.hpp),
// the maximal level at which this library's solver for each menu task stays
// clean, finds the violating run one level higher, and names the weakest-FD
// class Thm. 10 assigns. For tasks whose exact level is open (footnote 4 of
// the paper: some (j, j+k-1)-renaming parameters) the row says so: the
// observed level is a lower bound witnessed by a solver, the violation one
// level up refutes THAT solver only.
#pragma once

#include <string>
#include <vector>

#include "core/solvability.hpp"

namespace efd {

struct HierarchyRow {
  std::string task;
  int observed_level = 0;      ///< max FULLY-certified clean level of the solver
  bool level_exhausted = false;  ///< the sweep above observed_level ran out of
                                 ///< budget: the level is a lower bound only
  bool mem_exhausted = false;    ///< that budget was the dedup memory cap
                                 ///< (EFD_DEDUP_MEM_MB), not max_states
  bool violation_above = false;  ///< a concrete violating run exists at level+1
  std::string violation;       ///< what went wrong at level+1
  std::string weakest_fd;      ///< Thm. 10 class for the observed level
  std::string note;
  std::int64_t states_explored = 0;
  ExploreStats stats;          ///< merged telemetry of every level sweep tried
};

/// Name of the ¬Ωk class as the paper writes it.
[[nodiscard]] std::string fd_class_name(int level, int n);

/// Classifies one (task, solver) pair up to level `k_max`.
HierarchyRow classify(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
                      const ValueVec& inputs, int k_max, const ExploreConfig& base_cfg = {});

/// The standard menu of the E9 table: identity, consensus, k-set agreement,
/// strong renaming, (j, j+k-1)-renaming, weak symmetry breaking — all at
/// system size n (kept small: exploration is exhaustive). `threads` > 1
/// parallelizes each level sweep's DFS frontier (outcomes are unchanged).
std::vector<HierarchyRow> classify_standard_menu(int n, std::int64_t max_states = 60000,
                                                 int threads = 1);

/// Renders the table (one row per line, aligned) for benches and examples.
std::string format_hierarchy(const std::vector<HierarchyRow>& rows);

}  // namespace efd
