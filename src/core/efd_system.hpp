// The EFD system harness: assembling and verifying task-solving runs.
//
// Bundles the paper's run anatomy — n C-processes with task inputs, n
// S-processes with a failure detector, an environment's failure pattern, a
// scheduler — into one driver that executes the run and checks the outcome
// against the task relation (run satisfaction, §2.2). Also provides the
// *personified* scheduler of §2.3 (C-process p_i stops exactly when q_i
// crashes), which realizes classical solvability as a sub-case of EFD runs
// for the Prop. 3/5 experiments.
#pragma once

#include <functional>
#include <optional>

#include "fd/detectors.hpp"
#include "sim/schedule.hpp"
#include "tasks/task.hpp"

namespace efd {

struct EfdSetup {
  TaskPtr task;
  DetectorPtr detector;
  FailurePattern pattern{0};
  std::uint64_t seed = 0;
  ValueVec inputs;  ///< task inputs, ⊥ = not participating

  /// C-process body factory (index, input). Non-participants are not spawned.
  std::function<ProcBody(int, Value)> c_body;
  /// S-process body factory; null for restricted algorithms (no S-processes).
  std::function<ProcBody(int)> s_body;
};

struct EfdRunResult {
  bool all_decided = false;     ///< every participating C-process decided
  bool satisfied = false;       ///< (I, O) ∈ Δ for the produced output vector
  bool budget_exhausted = false;  ///< run stopped on max_steps, not decisions
  ValueVec outputs;             ///< O, ⊥ where undecided
  std::int64_t steps = 0;
  int max_concurrency = 0;      ///< peak undecided participants (traced runs)
  RunStats stats;               ///< the world's step-mix counters
};

/// Executes one run under `sched` and verifies it against the task.
EfdRunResult run_efd(const EfdSetup& setup, Scheduler& sched, std::int64_t max_steps,
                     bool trace = false);

/// Convenience: fair round-robin run.
EfdRunResult run_efd_fair(const EfdSetup& setup, std::int64_t max_steps, bool trace = false);

/// The personified scheduler of §2.3: fair round-robin in which C-process p_i
/// is scheduled only while S-process q_i is alive — runs of conventional
/// (classical) failure-detector algorithms are exactly these runs.
class PersonifiedScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::optional<Pid> next(const World& w) override;

 private:
  std::size_t cursor_ = 0;
};

}  // namespace efd
