// Exhaustive k-concurrent run exploration (paper §2.2, k-concurrency).
//
// For a RESTRICTED algorithm (S-processes take only null steps) a run is
// fully determined by the sequence of C-process choices, so the space of
// k-concurrent runs over a fixed input vector and arrival order is a tree:
// at every point the scheduler picks one of the (at most k) admitted,
// unfinished participants; a new participant is admitted whenever the window
// has room (admission bookkeeping lives in sim/schedule's AdmissionWindow,
// shared with KConcurrencyScheduler). The explorer walks this tree
// exhaustively (with state-signature deduplication — different interleavings
// converge) and checks the task relation at every node.
//
// Two engines produce identical outcomes:
//  * kFullReplay — the reference engine: re-executes the whole prefix from a
//    fresh World at every node (O(depth²) work per root-to-leaf path);
//  * kIncremental — the production engine: one persistent World advanced a
//    single step per DFS edge, with an exact undo log (memory cells,
//    signatures, decision flags, admission window) for backtracking.
//    Coroutine frames cannot run backwards, so a backtracked process is
//    lazily respawned and fast-forwarded by redelivering its logged step
//    results — deterministic replay makes that equivalent to never having
//    rewound it. O(1) amortized work per edge.
// With threads > 1 the incremental engine shards the DFS frontier over a
// work-stealing pool with a sharded concurrent signature set; outcomes are
// reproducible regardless of thread count (see DESIGN.md, "Exploration
// engine", for the determinism argument).
//
// This is the constructive face of the paper's solvability definitions:
//  * a clean sweep at level k is machine-checked evidence that the algorithm
//    solves the task k-concurrently on the explored inputs;
//  * a violation at level k+1 (relation breach or no decision within the
//    step bound) exhibits the run the impossibility proofs talk about.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/diskset.hpp"
#include "core/telemetry.hpp"
#include "sim/world.hpp"
#include "tasks/task.hpp"

namespace efd {

enum class ExploreEngine {
  kIncremental,  ///< persistent world + undo log (default)
  kFullReplay,   ///< reference: fresh world + full prefix replay per node
};

struct ExploreConfig {
  int k = 1;                       ///< concurrency window
  std::vector<int> arrival;        ///< participating C-indices in arrival order
  int max_depth = 300;             ///< per-run step bound ("never decides" proxy)
  std::int64_t max_states = 100000;  ///< exploration budget
  bool dedup = true;               ///< merge states with equal signatures
  ExploreEngine engine = ExploreEngine::kIncremental;
  int threads = 1;                 ///< >1: parallel frontier (incremental engine only)
  /// Optional per-step observer attached to the engine's world(s), e.g. a
  /// core/monitors LivenessMonitor in accounting mode (its step counts are
  /// raw executed steps, INCLUDING backtracked ones — liveness bounds are
  /// meaningless across DFS branches, so attach with zero bounds). Ignored
  /// by parallel sweeps: one observer cannot soundly watch many worlds.
  StepObserver* observer = nullptr;
  /// Builds the world each engine explores in (null: World::failure_free(1),
  /// the legacy pure-register world). MUST be deterministic — the reference
  /// engine calls it once per node — and must NOT spawn C-processes (the
  /// explorer spawns the participants itself). The canonical use is a
  /// substrate install, e.g. [n] { World w = World::failure_free(1);
  /// install_msg_eager(w, n, n); return w; } — explored MP worlds are the
  /// EAGER (sends-land-instantly) subfamily: no link daemons, since S-steps
  /// are never scheduled by the restricted-algorithm tree. Worlds with an
  /// installed substrate explore with the BLOCKING-recv rule: a process whose
  /// next op is a recv on an empty mailbox is not schedulable (otherwise
  /// poll loops make every MP protocol a spurious step-bound violation);
  /// configurations where every live process is blocked are dead ends,
  /// counted as blocked_runs. Install ShmSubstrate explicitly on the
  /// registers-as-mailboxes side of a differential pair so both backends
  /// apply the identical rule.
  std::function<World()> world_factory;
  /// Dedup store shape (core/diskset.hpp). The default reads EFD_DEDUP_TIERS
  /// / EFD_DEDUP_MEM_MB / EFD_DEDUP_DIR, so every sweep in the process obeys
  /// the environment; a default environment yields the plain in-memory store
  /// and the zero-overhead legacy containers. Semantic counters (states,
  /// terminal_runs, dedup_misses) are identical across store shapes — tiers
  /// only move where duplicates are detected and where the memory lives.
  DedupConfig dedup_store = DedupConfig::from_env();
};

struct ExploreOutcome {
  bool ok = true;
  bool budget_exhausted = false;   ///< hit max_states OR the memory cap before covering the tree
  bool mem_exhausted = false;      ///< the dedup store hit EFD_DEDUP_MEM_MB with no disk tier
                                   ///< (implies budget_exhausted: the sweep certifies nothing)
  std::int64_t terminal_runs = 0;  ///< complete runs reached (all decided)
  std::int64_t blocked_runs = 0;   ///< dead ends: live processes, all blocked on
                                   ///< an empty-mailbox recv (substrate worlds)
  std::int64_t states = 0;
  std::string violation;           ///< "" when ok
  std::vector<int> bad_schedule;   ///< C-index choices reproducing the violation
  ExploreStats stats;              ///< sweep telemetry (core/telemetry.hpp);
                                   ///< the deterministic subset matches
                                   ///< across engines and thread counts
};

/// Explores every k-concurrent schedule of the restricted algorithm `body`
/// over `inputs`. `body(i, input)` builds C-process i's coroutine.
/// Deterministic: the outcome is byte-identical across engines and thread
/// counts (non-clean parallel sweeps fall back to a canonical sequential
/// pass, so even bad_schedule is reproducible).
ExploreOutcome explore_k_concurrent(const TaskPtr& task,
                                    const std::function<ProcBody(int, Value)>& body,
                                    const ValueVec& inputs, const ExploreConfig& cfg);

struct CleanLevelResult {
  int level = 0;                 ///< highest level whose sweep was FULLY covered clean
  bool budget_exhausted = false;  ///< the sweep above `level` ran out of budget:
                                  ///< `level` is a certified lower bound only
  bool mem_exhausted = false;     ///< that exhaustion was the memory cap, not max_states
  std::int64_t states = 0;       ///< total states across all level sweeps
  ExploreStats stats;            ///< merged telemetry of the counted sweeps
};

/// The largest level 1..k_max at which exploration stays clean AND fully
/// covered on the given inputs (level 0 if even level 1 fails). A sweep that
/// exhausts its budget certifies nothing — it no longer bumps the level; the
/// exhaustion is surfaced so callers (core/hierarchy) can render the level
/// as a lower bound. With base_cfg.threads > 1, levels are certified
/// concurrently on a work-stealing pool.
CleanLevelResult max_clean_level(const TaskPtr& task,
                                 const std::function<ProcBody(int, Value)>& body,
                                 const ValueVec& inputs, int k_max,
                                 ExploreConfig base_cfg = {});

}  // namespace efd
