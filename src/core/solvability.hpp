// Exhaustive k-concurrent run exploration (paper §2.2, k-concurrency).
//
// For a RESTRICTED algorithm (S-processes take only null steps) a run is
// fully determined by the sequence of C-process choices, so the space of
// k-concurrent runs over a fixed input vector and arrival order is a tree:
// at every point the scheduler picks one of the (at most k) admitted,
// undecided participants; a new participant is admitted whenever the window
// has room. The explorer walks this tree exhaustively (with state-signature
// deduplication — different interleavings converge), replaying prefixes
// deterministically, and checks the task relation at every node.
//
// This is the constructive face of the paper's solvability definitions:
//  * a clean sweep at level k is machine-checked evidence that the algorithm
//    solves the task k-concurrently on the explored inputs;
//  * a violation at level k+1 (relation breach or no decision within the
//    step bound) exhibits the run the impossibility proofs talk about.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/world.hpp"
#include "tasks/task.hpp"

namespace efd {

struct ExploreConfig {
  int k = 1;                       ///< concurrency window
  std::vector<int> arrival;        ///< participating C-indices in arrival order
  int max_depth = 300;             ///< per-run step bound ("never decides" proxy)
  std::int64_t max_states = 100000;  ///< exploration budget
  bool dedup = true;               ///< merge states with equal signatures
};

struct ExploreOutcome {
  bool ok = true;
  bool budget_exhausted = false;   ///< hit max_states before covering the tree
  std::int64_t terminal_runs = 0;  ///< complete runs reached (all decided)
  std::int64_t states = 0;
  std::string violation;           ///< "" when ok
  std::vector<int> bad_schedule;   ///< C-index choices reproducing the violation
};

/// Explores every k-concurrent schedule of the restricted algorithm `body`
/// over `inputs`. `body(i, input)` builds C-process i's coroutine.
ExploreOutcome explore_k_concurrent(const TaskPtr& task,
                                    const std::function<ProcBody(int, Value)>& body,
                                    const ValueVec& inputs, const ExploreConfig& cfg);

/// The largest level 1..k_max at which exploration stays clean on the given
/// inputs (0 if even level 1 fails). The empirical "concurrency level" used
/// by the hierarchy table.
int max_clean_level(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
                    const ValueVec& inputs, int k_max, ExploreConfig base_cfg = {});

}  // namespace efd
