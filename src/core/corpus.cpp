#include "core/corpus.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace efd {
namespace {

namespace fs = std::filesystem;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  std::uint64_t z = h ^ (x + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

std::uint64_t corpus_key(const ScheduleTape& tape) {
  std::uint64_t h = fnv1a(tape.scenario);
  h = mix(h, fnv1a(tape.finding));
  // The replay trace hash is the content identity of the run; tapes that
  // never stamped one (foreign / hand-built) fall back to their full text so
  // distinct artifacts never silently collide on (scenario, finding).
  h = mix(h, tape.expect_hash ? *tape.expect_hash : fnv1a(tape.serialize()));
  return h;
}

CorpusStore::LoadReport CorpusStore::scan(const std::string& dir, bool quarantine) {
  LoadReport rep;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) throw CorpusIoError("corpus: cannot scan " + dir + ": " + ec.message());
  for (const auto& ent : it) {
    if (!ent.is_regular_file() || ent.path().extension() != ".tape") continue;
    const std::string path = ent.path().string();
    try {
      const ScheduleTape tape = load_tape(path);
      entries_.emplace(corpus_key(tape), path);
      ++rep.loaded;
    } catch (const TapeError&) {
      if (!quarantine) {
        ++rep.quarantined;
        continue;
      }
      const fs::path qdir = fs::path(dir) / "quarantine";
      fs::create_directories(qdir, ec);
      fs::rename(ent.path(), qdir / ent.path().filename(), ec);
      // A rename failure (read-only dir) leaves the entry in place; it stays
      // unindexed either way, which is all correctness needs.
      ++rep.quarantined;
    }
  }
  return rep;
}

CorpusStore::LoadReport CorpusStore::open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw CorpusIoError("corpus: cannot create " + dir + ": " + ec.message());
  if (!fs::is_directory(dir)) {
    throw CorpusIoError("corpus: " + dir + " is not a directory");
  }
  dir_ = dir;
  LoadReport rep = scan(dir, /*quarantine=*/true);

  // Restore raw-tape aliases. The index is append-only and best-effort: a
  // malformed line (torn final append from a crash) is skipped, and aliases
  // whose stored key is gone (entry quarantined) are dropped.
  std::ifstream idx(fs::path(dir) / "aliases.idx");
  std::string line;
  while (std::getline(idx, line)) {
    std::istringstream ls(line);
    std::uint64_t alias = 0;
    std::uint64_t target = 0;
    if (!(ls >> std::hex >> alias >> target)) continue;
    if (entries_.count(target) == 0) continue;
    if (aliases_.emplace(alias, target).second) ++rep.aliases;
  }
  return rep;
}

CorpusStore::LoadReport CorpusStore::absorb(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return {};
  return scan(dir, /*quarantine=*/false);
}

bool CorpusStore::insert(std::uint64_t key, const ScheduleTape& tape, const std::string& stem,
                         std::string* path_out) {
  if (path_out) path_out->clear();
  if (contains(key)) return false;
  std::string path;
  if (!dir_.empty()) {
    const fs::path final_path = fs::path(dir_) / (stem + "_" + key_hex(key) + ".tape");
    const fs::path tmp_path = fs::path(dir_) / (".tmp_" + key_hex(key) + ".tape");
    try {
      save_tape(tape, tmp_path.string());
    } catch (const TapeIoError& e) {
      throw CorpusIoError(std::string("corpus: ") + e.what());
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      throw CorpusIoError("corpus: cannot publish " + final_path.string() + ": " + ec.message());
    }
    path = final_path.string();
  }
  entries_.emplace(key, path);
  if (path_out) *path_out = path;
  return true;
}

void CorpusStore::add_alias(std::uint64_t alias, std::uint64_t target) {
  if (contains(alias)) return;
  aliases_.emplace(alias, target);
  if (dir_.empty()) return;
  std::ofstream idx(fs::path(dir_) / "aliases.idx", std::ios::app);
  idx << key_hex(alias) << ' ' << key_hex(target) << '\n';
  // Best-effort: a failed append costs one re-shrink after the next restart,
  // never correctness.
}

std::string CorpusStore::path_of(std::uint64_t key) const {
  const auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  const auto al = aliases_.find(key);
  if (al != aliases_.end()) {
    const auto tgt = entries_.find(al->second);
    if (tgt != entries_.end()) return tgt->second;
  }
  return "";
}

}  // namespace efd
