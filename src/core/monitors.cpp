#include "core/monitors.hpp"

#include <algorithm>

#include "sim/world.hpp"

namespace efd {

const char* MonitorViolation::kind_name() const {
  switch (kind) {
    case Kind::kWaitFree: return "wait_free";
    case Kind::kStarvation: return "starvation";
    case Kind::kLivelock: return "livelock";
    case Kind::kRetransmitStorm: return "retransmit_storm";
  }
  return "?";
}

std::string MonitorViolation::to_string() const {
  return std::string(kind_name()) + " " + pid.to_string() + ": " + std::to_string(measured) +
         " > bound " + std::to_string(bound) + " (at step " + std::to_string(at_step) + ")";
}

LivenessMonitor::CTrack& LivenessMonitor::track(int ci) {
  if (static_cast<std::size_t>(ci) >= c_.size()) c_.resize(static_cast<std::size_t>(ci) + 1);
  return c_[static_cast<std::size_t>(ci)];
}

void LivenessMonitor::record(MonitorViolation::Kind kind, Pid pid, std::int64_t measured,
                             std::int64_t bound) {
  violations_.push_back(MonitorViolation{kind, pid, measured, bound, step_});
}

void LivenessMonitor::on_step(Pid pid, OpKind op, bool null_step, bool decided_now,
                              bool terminated_now) {
  ++step_;
  if (!pid.is_c()) return;
  CTrack& t = track(pid.index);

  // Starvation is detected the moment a process resurfaces (and at finalize
  // for processes that never resurface): gap = steps it sat unscheduled.
  if (t.seen && !t.finished) {
    const std::int64_t gap = step_ - t.last_sched;
    max_gap_ = std::max(max_gap_, gap);
    if (bounds_.starvation_window > 0 && gap > bounds_.starvation_window && !t.flagged_starved) {
      t.flagged_starved = true;
      record(MonitorViolation::Kind::kStarvation, pid, gap, bounds_.starvation_window);
    }
  }
  t.seen = true;
  t.last_sched = step_;
  if (null_step || t.finished) return;

  ++t.own_steps;
  ++drought_;
  max_drought_ = std::max(max_drought_, drought_);
  if (op == OpKind::kSend) {
    ++send_burst_;
    max_send_burst_ = std::max(max_send_burst_, send_burst_);
    if (bounds_.retransmit_storm_window > 0 && send_burst_ > bounds_.retransmit_storm_window &&
        !flagged_storm_) {
      flagged_storm_ = true;
      record(MonitorViolation::Kind::kRetransmitStorm, pid, send_burst_,
             bounds_.retransmit_storm_window);
    }
  }

  if (decided_now) {
    t.decided = true;
    t.finished = true;
    t.steps_to_decide = t.own_steps;
    ++decisions_;
    max_to_decide_ = std::max(max_to_decide_, t.own_steps);
    drought_ = 0;
    send_burst_ = 0;
  } else {
    max_undecided_ = std::max(max_undecided_, t.own_steps);
    if (bounds_.own_steps_to_decide > 0 && t.own_steps > bounds_.own_steps_to_decide &&
        !t.flagged_waitfree) {
      t.flagged_waitfree = true;
      record(MonitorViolation::Kind::kWaitFree, pid, t.own_steps, bounds_.own_steps_to_decide);
    }
    if (terminated_now) {
      // Quitter: terminated without deciding. It can never violate the
      // wait-freedom bound any further; stop tracking it.
      t.finished = true;
      drought_ = 0;
    } else if (bounds_.livelock_window > 0 && drought_ > bounds_.livelock_window &&
               !flagged_livelock_) {
      flagged_livelock_ = true;
      record(MonitorViolation::Kind::kLivelock, pid, drought_, bounds_.livelock_window);
    }
  }
}

void LivenessMonitor::finalize(const World& w) {
  if (finalized_) return;
  finalized_ = true;
  for (int ci = 0; ci < w.num_c(); ++ci) {
    const Pid pid = cpid(ci);
    if (!w.exists(pid)) continue;
    CTrack& t = track(ci);
    if (t.finished || w.decided(pid) || w.terminated(pid)) continue;
    const std::int64_t gap = step_ - (t.seen ? t.last_sched : 0);
    max_gap_ = std::max(max_gap_, gap);
    if (bounds_.starvation_window > 0 && gap > bounds_.starvation_window && !t.flagged_starved) {
      t.flagged_starved = true;
      record(MonitorViolation::Kind::kStarvation, pid, gap, bounds_.starvation_window);
    }
  }
}

bool LivenessMonitor::wait_free_ok() const {
  return std::none_of(violations_.begin(), violations_.end(), [](const MonitorViolation& v) {
    return v.kind == MonitorViolation::Kind::kWaitFree;
  });
}

telemetry::Json LivenessMonitor::to_json() const {
  using telemetry::Json;
  Json j = Json::object();
  Json b = Json::object();
  b["own_steps_to_decide"] = Json(bounds_.own_steps_to_decide);
  b["starvation_window"] = Json(bounds_.starvation_window);
  b["livelock_window"] = Json(bounds_.livelock_window);
  b["retransmit_storm_window"] = Json(bounds_.retransmit_storm_window);
  j["bounds"] = std::move(b);
  j["monitored_steps"] = Json(step_);
  j["decisions"] = Json(decisions_);
  j["max_own_steps_to_decide"] = Json(max_to_decide_);
  j["max_own_steps_undecided"] = Json(max_undecided_);
  j["max_starvation_gap"] = Json(max_gap_);
  j["max_decision_drought"] = Json(max_drought_);
  j["max_send_burst"] = Json(max_send_burst_);
  Json viol = Json::array();
  for (const auto& v : violations_) {
    Json e = Json::object();
    e["kind"] = Json(v.kind_name());
    e["pid"] = Json(v.pid.to_string());
    e["measured"] = Json(v.measured);
    e["bound"] = Json(v.bound);
    e["at_step"] = Json(v.at_step);
    viol.push_back(std::move(e));
  }
  j["violations"] = std::move(viol);
  j["wait_free_ok"] = Json(wait_free_ok());
  return j;
}

}  // namespace efd
