#include "core/efd_system.hpp"

#include <stdexcept>

namespace efd {

EfdRunResult run_efd(const EfdSetup& setup, Scheduler& sched, std::int64_t max_steps, bool trace) {
  if (!setup.task || !setup.detector || !setup.c_body) {
    throw std::invalid_argument("run_efd: task, detector and c_body are required");
  }
  const int n = setup.task->n_procs();
  if (static_cast<int>(setup.inputs.size()) != n) {
    throw std::invalid_argument("run_efd: input vector arity mismatch");
  }

  World w(setup.pattern, setup.detector->history(setup.pattern, setup.seed));
  for (int i = 0; i < n; ++i) {
    if (!setup.inputs[static_cast<std::size_t>(i)].is_nil()) {
      w.spawn_c(i, setup.c_body(i, setup.inputs[static_cast<std::size_t>(i)]));
    }
  }
  if (setup.s_body) {
    for (int i = 0; i < setup.pattern.n(); ++i) w.spawn_s(i, setup.s_body(i));
  }
  if (trace) w.enable_trace();

  const DriveResult r = drive(w, sched, max_steps);

  EfdRunResult out;
  out.steps = r.steps;
  out.budget_exhausted = r.budget_exhausted;
  out.stats = w.run_stats();
  out.all_decided = w.all_c_decided();
  out.outputs = w.output_vector();
  out.outputs.resize(static_cast<std::size_t>(n));  // ⊥-pad non-participants
  out.satisfied = setup.task->relation(setup.inputs, out.outputs);
  if (trace) out.max_concurrency = max_concurrency(w.trace());
  return out;
}

EfdRunResult run_efd_fair(const EfdSetup& setup, std::int64_t max_steps, bool trace) {
  RoundRobinScheduler rr;
  return run_efd(setup, rr, max_steps, trace);
}

std::optional<Pid> PersonifiedScheduler::next(const World& w) {
  const auto pids = w.pids();
  for (std::size_t tries = 0; tries < pids.size(); ++tries) {
    const Pid cand = pids[cursor_ % pids.size()];
    ++cursor_;
    if (!w.alive(cand) || w.terminated(cand)) continue;
    if (cand.is_c() && cand.index < w.pattern().n() && !w.alive(spid(cand.index))) {
      continue;  // p_i dies with q_i (conventional-model coupling)
    }
    return cand;
  }
  return std::nullopt;
}

}  // namespace efd
