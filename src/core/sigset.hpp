// Flat open-addressing set of 64-bit exploration signatures.
//
// The dedup set is the hottest container in an exploration sweep: one lookup
// per DFS node, one insert per unseen configuration. std::unordered_set
// allocates a node per insert and chases a bucket pointer per lookup; this
// set stores the signatures in one flat power-of-two array with linear
// probing, so a sweep's dedup traffic performs zero allocations outside the
// (amortized, doubling) table growths.
//
// Semantics match unordered_set::insert().second exactly: first insert wins,
// duplicates report false. Signatures are already avalanche-mixed by the
// explorers (mix64 / content hashes), but the probe index is remixed here
// anyway so a structured signature family cannot cluster the table.
// Not thread-safe; ShardedSigSet (core/workpool.hpp) stripes instances of
// this set behind per-shard mutexes for the parallel frontier.
#pragma once

#include <cstdint>
#include <vector>

namespace efd {

class FlatSigSet {
 public:
  FlatSigSet() : slots_(kInitialCap, kEmpty) {}

  /// Inserts `sig`; true iff it was unseen (first insert wins).
  bool insert(std::uint64_t sig) {
    // 0 cannot live in the table (it marks empty slots); track it aside.
    if (sig == kEmpty) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = probe_start(sig, mask);
    while (slots_[i] != kEmpty) {
      if (slots_[i] == sig) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = sig;
    ++size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::size_t kInitialCap = 1024;  // power of two

  [[nodiscard]] static std::size_t probe_start(std::uint64_t sig, std::size_t mask) noexcept {
    return static_cast<std::size_t>((sig * 0x9E3779B97F4A7C15ULL) >> 17) & mask;
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    const std::size_t mask = slots_.size() - 1;
    for (const std::uint64_t sig : old) {
      if (sig == kEmpty) continue;
      std::size_t i = probe_start(sig, mask);
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = sig;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  bool has_zero_ = false;
};

}  // namespace efd
