// Flat open-addressing set of 64-bit exploration signatures.
//
// The dedup set is the hottest container in an exploration sweep: one lookup
// per DFS node, one insert per unseen configuration. std::unordered_set
// allocates a node per insert and chases a bucket pointer per lookup; this
// set stores the signatures in one flat power-of-two array with linear
// probing, so a sweep's dedup traffic performs zero allocations outside the
// (amortized, doubling) table growths.
//
// Semantics match unordered_set::insert().second exactly: first insert wins,
// duplicates report false. Signatures are already avalanche-mixed by the
// explorers (mix64 / content hashes), but the probe index is remixed here
// anyway so a structured signature family cannot cluster the table.
// Not thread-safe; ShardedSigSet (core/workpool.hpp) stripes instances of
// this set behind per-shard mutexes for the parallel frontier, and the
// tiered store (core/diskset.hpp) drains shards into disk runs via
// drain_into() when they cross their byte budget.
#pragma once

#include <cstdint>
#include <vector>

namespace efd {

class FlatSigSet {
 public:
  FlatSigSet() : slots_(kInitialCap, kEmpty) {}

  /// Inserts `sig`; true iff it was unseen (first insert wins). The load
  /// check runs only when the probe proved the signature fresh: inserting a
  /// duplicate can never grow the table, and the aside-tracked zero
  /// signature never counts toward the load factor (it occupies no slot).
  bool insert(std::uint64_t sig) {
    // 0 cannot live in the table (it marks empty slots); track it aside.
    if (sig == kEmpty) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      return fresh;
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = probe_start(sig, mask);
    while (slots_[i] != kEmpty) {
      if (slots_[i] == sig) return false;
      i = (i + 1) & mask;
    }
    if ((table_size_ + 1) * 10 >= slots_.size() * 7) {
      grow();
      // The table moved: re-derive the insertion slot (no duplicate can
      // appear — growth only rehashes existing, distinct signatures).
      const std::size_t m2 = slots_.size() - 1;
      i = probe_start(sig, m2);
      while (slots_[i] != kEmpty) i = (i + 1) & m2;
    }
    slots_[i] = sig;
    ++table_size_;
    return true;
  }

  /// True iff `sig` was inserted before. Never grows the table.
  [[nodiscard]] bool contains(std::uint64_t sig) const noexcept {
    if (sig == kEmpty) return has_zero_;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = probe_start(sig, mask);
    while (slots_[i] != kEmpty) {
      if (slots_[i] == sig) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return table_size_ + (has_zero_ ? 1u : 0u);
  }

  /// Bytes held by the slot array (the set's whole footprint; used by the
  /// tiered store's per-shard spill budget).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return slots_.size() * sizeof(std::uint64_t);
  }

  /// Moves every stored signature (including an aside-tracked zero) into
  /// `out` (appended, unsorted) and resets the set to its initial capacity,
  /// releasing the table memory. Spill primitive of the tiered store.
  void drain_into(std::vector<std::uint64_t>& out) {
    for (const std::uint64_t sig : slots_) {
      if (sig != kEmpty) out.push_back(sig);
    }
    if (has_zero_) out.push_back(kEmpty);
    clear();
  }

  /// Empties the set and shrinks it back to the initial capacity (the swap
  /// idiom guarantees the grown table's memory is actually released, which
  /// is the whole point of spilling a shard).
  void clear() {
    std::vector<std::uint64_t>(kInitialCap, kEmpty).swap(slots_);
    table_size_ = 0;
    has_zero_ = false;
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::size_t kInitialCap = 1024;  // power of two

  [[nodiscard]] static std::size_t probe_start(std::uint64_t sig, std::size_t mask) noexcept {
    return static_cast<std::size_t>((sig * 0x9E3779B97F4A7C15ULL) >> 17) & mask;
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    const std::size_t mask = slots_.size() - 1;
    for (const std::uint64_t sig : old) {
      if (sig == kEmpty) continue;
      std::size_t i = probe_start(sig, mask);
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = sig;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t table_size_ = 0;  ///< slots occupied (excludes the aside zero)
  bool has_zero_ = false;
};

}  // namespace efd
