#include "core/bivalence.hpp"

#include <unordered_map>
#include <unordered_set>

#include "core/workpool.hpp"
#include "sim/memory.hpp"

namespace efd {
namespace {

/// One configuration of the simulated restricted system.
struct Config {
  std::vector<Value> state;      ///< per-participant automaton state
  std::vector<bool> decided;
  std::vector<bool> halted;
  std::map<RegId, Value> mem;

  [[nodiscard]] std::uint64_t sig() const {
    return lasso_config_sig(state, decided, halted, mem);
  }
};

class LassoSearcher {
 public:
  LassoSearcher(const SimProgramPtr& prog, const ValueVec& inputs, const LassoConfig& cfg)
      : prog_(prog), cfg_(cfg) {
    const int n = static_cast<int>(cfg.participants.size());
    init_.state.resize(static_cast<std::size_t>(n));
    init_.decided.assign(static_cast<std::size_t>(n), false);
    init_.halted.assign(static_cast<std::size_t>(n), false);
    for (int a = 0; a < n; ++a) {
      const int idx = cfg.participants[static_cast<std::size_t>(a)];
      init_.state[static_cast<std::size_t>(a)] =
          prog->init(idx, inputs.at(static_cast<std::size_t>(idx)));
    }
  }

  LassoResult run() {
    std::vector<int> sched;
    Config c = init_;
    dfs(c, sched);
    return out_;
  }

  /// One shard of the parallel search: the subtree below first move `first`.
  /// The root configuration is seeded on the stack (and as visited, and is
  /// NOT charged — the merge accounts for it once), so cycles closing at the
  /// root are still detected and prefix positions match the sequential
  /// search. The shard has private visited/on-stack state and its own
  /// max_states budget, making its result independent of every other shard.
  LassoResult run_shard(int first) {
    Config c = init_;
    const std::uint64_t root_sig = c.sig();
    visited_.insert(root_sig);
    on_stack_[root_sig] = 0;
    std::vector<int> sched;
    step(c, first);
    sched.push_back(first);
    dfs(c, sched);
    return out_;
  }

  [[nodiscard]] std::vector<int> initial_eligible() const { return eligible(init_); }

 private:
  /// Performs one step of participant slot `a`; returns false if it cannot
  /// step (halted).
  bool step(Config& c, int a) const {
    if (c.halted[static_cast<std::size_t>(a)]) return false;
    Value& st = c.state[static_cast<std::size_t>(a)];
    const SimAction act = prog_->action(st);
    Value result;
    switch (act.kind) {
      case SimAction::Kind::kRead: {
        const auto it = c.mem.find(act.addr.id());
        if (it != c.mem.end()) result = it->second;
        break;
      }
      case SimAction::Kind::kWrite:
        c.mem[act.addr.id()] = act.value;
        break;
      case SimAction::Kind::kYield:
        break;
      case SimAction::Kind::kDecide:
        c.decided[static_cast<std::size_t>(a)] = true;
        break;
      case SimAction::Kind::kQuery:
        throw std::logic_error("find_nontermination: restricted algorithms cannot query");
      case SimAction::Kind::kHalt:
        c.halted[static_cast<std::size_t>(a)] = true;
        return false;
    }
    st = prog_->transition(st, result);
    return true;
  }

  [[nodiscard]] std::vector<int> eligible(const Config& c) const {
    std::vector<int> out;
    for (std::size_t a = 0; a < c.state.size(); ++a) {
      if (!c.decided[a] && !c.halted[a]) out.push_back(static_cast<int>(a));
    }
    return out;
  }

  /// Replays prefix + several cycle repetitions from scratch: the lasso is
  /// genuine if no new decision happens during the repetitions.
  [[nodiscard]] bool validate(const std::vector<int>& prefix,
                              const std::vector<int>& cycle) const {
    Config c = init_;
    for (int a : prefix) step(c, a);
    const auto decided_before = c.decided;
    for (int rep = 0; rep < cfg_.validate_iterations; ++rep) {
      for (int a : cycle) {
        step(c, a);
        if (!decided_before[static_cast<std::size_t>(a)] &&
            c.decided[static_cast<std::size_t>(a)]) {
          return false;
        }
      }
    }
    return true;
  }

  void dfs(const Config& c, std::vector<int>& sched) {
    if (out_.found || out_.budget_exhausted) return;
    if (++out_.states > cfg_.max_states) {
      out_.budget_exhausted = true;
      return;
    }
    const auto elig = eligible(c);
    if (elig.empty()) return;  // everyone decided/halted: branch terminates

    const std::uint64_t sig = c.sig();
    if (const auto it = on_stack_.find(sig); it != on_stack_.end()) {
      std::vector<int> prefix(sched.begin(), sched.begin() + it->second);
      std::vector<int> cycle(sched.begin() + it->second, sched.end());
      if (!cycle.empty() && validate(prefix, cycle)) {
        out_.found = true;
        out_.prefix = std::move(prefix);
        out_.cycle = std::move(cycle);
      }
      return;
    }
    if (static_cast<int>(sched.size()) >= cfg_.max_depth) return;
    if (!visited_.insert(sig).second) return;

    on_stack_[sig] = static_cast<long>(sched.size());
    for (int a : elig) {
      Config next = c;
      step(next, a);
      sched.push_back(a);
      dfs(next, sched);
      sched.pop_back();
      if (out_.found || out_.budget_exhausted) break;
    }
    on_stack_.erase(sig);
  }

  SimProgramPtr prog_;
  LassoConfig cfg_;
  Config init_;
  LassoResult out_;
  std::unordered_map<std::uint64_t, long> on_stack_;
  std::unordered_set<std::uint64_t> visited_;
};

}  // namespace

LassoResult find_nontermination(const SimProgramPtr& prog, const ValueVec& inputs,
                                const LassoConfig& cfg) {
  if (cfg.threads <= 1) return LassoSearcher(prog, inputs, cfg).run();

  const std::vector<int> first_moves = LassoSearcher(prog, inputs, cfg).initial_eligible();
  if (first_moves.size() <= 1) return LassoSearcher(prog, inputs, cfg).run();

  // Shard per top-level subtree; shards are fully independent (private
  // visited/on-stack, private budget), so each one is deterministic on its
  // own and the merge below is thread-count-invariant.
  std::vector<LassoResult> parts(first_moves.size());
  std::vector<std::function<void()>> jobs;
  jobs.reserve(first_moves.size());
  for (std::size_t i = 0; i < first_moves.size(); ++i) {
    jobs.push_back([&, i] {
      parts[i] = LassoSearcher(prog, inputs, cfg).run_shard(first_moves[i]);
    });
  }
  WorkStealingPool::run(std::move(jobs), cfg.threads);

  LassoResult out;
  out.states = 1;  // the shared root, charged once
  for (const LassoResult& p : parts) {
    out.states += p.states;
    out.budget_exhausted = out.budget_exhausted || p.budget_exhausted;
  }
  // Deterministic merge: the shard with the smallest first move wins.
  for (const LassoResult& p : parts) {
    if (p.found) {
      out.found = true;
      out.prefix = p.prefix;
      out.cycle = p.cycle;
      break;
    }
  }
  return out;
}

std::uint64_t lasso_config_sig(const std::vector<Value>& state, const std::vector<bool>& decided,
                               const std::vector<bool>& halted,
                               const std::map<RegId, Value>& mem) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& s : state) h = h * 1099511628211ULL + s.hash();
  for (bool d : decided) h = h * 1099511628211ULL + (d ? 2u : 1u);
  for (bool d : halted) h = h * 1099511628211ULL + (d ? 5u : 3u);
  // Memory cells fold COMMUTATIVELY (a sum of per-cell hashes keyed by the
  // canonical register name, as in RegisterFile::content_hash): map order is
  // RegId order, i.e. process-global interning order, and a position-
  // dependent chain over it would change signatures whenever unrelated code
  // interned registers first — breaking dedup/cycle-detection determinism.
  std::uint64_t acc = 0;
  for (const auto& [k, v] : mem) {
    acc += cell_content_hash(reg_name_hash(k), v.hash());
  }
  return h * 1099511628211ULL + cell_content_hash(0x9AE16A3B2F90404FULL, acc);
}

}  // namespace efd
