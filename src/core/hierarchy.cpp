#include "core/hierarchy.hpp"

#include <sstream>

#include "algo/one_concurrent.hpp"
#include "algo/participating_set.hpp"
#include "algo/renaming.hpp"
#include "sim/memory.hpp"
#include "tasks/participating_set.hpp"
#include "tasks/consensus.hpp"
#include "tasks/identity.hpp"
#include "tasks/renaming.hpp"
#include "tasks/set_agreement.hpp"
#include "tasks/symmetry_breaking.hpp"

namespace efd {
namespace {

// The wait-free identity algorithm: publish the input, decide it.
Proc identity_solver(Context& ctx, Value input) {
  co_await ctx.write(reg("id/In", ctx.pid().index), input);
  co_await ctx.decide(input);
}

}  // namespace

std::string fd_class_name(int level, int n) {
  if (level >= n) return "trivial (wait-free)";
  if (level == 1) return "Omega (= antiOmega-1)";
  return "antiOmega-" + std::to_string(level);
}

HierarchyRow classify(const TaskPtr& task, const std::function<ProcBody(int, Value)>& body,
                      const ValueVec& inputs, int k_max, const ExploreConfig& base_cfg) {
  HierarchyRow row;
  row.task = task->name();
  ExploreConfig cfg = base_cfg;
  if (cfg.arrival.empty()) cfg.arrival = Task::participants(inputs);

  for (int k = 1; k <= k_max; ++k) {
    cfg.k = k;
    const ExploreOutcome o = explore_k_concurrent(task, body, inputs, cfg);
    row.states_explored += o.states;
    row.stats.merge(o.stats);
    if (!o.ok) {
      row.violation_above = row.observed_level == k - 1 && row.observed_level > 0;
      row.violation = o.violation;
      break;
    }
    if (o.budget_exhausted) {
      // The sweep did NOT cover level k, so a clean partial sweep certifies
      // nothing: keep the last fully-covered level and mark the row as a
      // lower bound instead of silently counting a sampled level. The note
      // distinguishes the state budget from the dedup memory cap: the
      // former is lifted with max_states, the latter with EFD_DEDUP_MEM_MB
      // or by enabling the disk tier (EFD_DEDUP_TIERS=tiered).
      row.level_exhausted = true;
      row.mem_exhausted = o.mem_exhausted;
      row.note = o.mem_exhausted
                     ? "dedup memory cap hit at level " + std::to_string(k) +
                           "; observed level is a certified lower bound" +
                           " (enable the disk tier to certify)"
                     : "budget hit at level " + std::to_string(k) +
                           "; observed level is a certified lower bound";
      break;
    }
    row.observed_level = k;
  }
  const int n = task->n_procs();
  row.weakest_fd = fd_class_name(row.observed_level, n);
  return row;
}

std::vector<HierarchyRow> classify_standard_menu(int n, std::int64_t max_states, int threads) {
  std::vector<HierarchyRow> rows;
  ExploreConfig cfg;
  cfg.max_states = max_states;
  cfg.threads = threads;

  auto one_conc_body = [](const TaskPtr& task, const std::string& ns) {
    return [task, ns](int, Value input) { return make_one_concurrent(task, input, ns); };
  };

  {  // identity: wait-free, class n. Solved by the direct 2-step algorithm
     // (publish, decide own input) so level-n exploration stays exhaustive.
    auto task = std::make_shared<IdentityTask>(n);
    auto body = [](int, Value input) {
      return ProcBody([input](Context& ctx) { return identity_solver(ctx, input); });
    };
    auto row = classify(task, body, task->sample_input(1), n, cfg);
    row.note = "wait-free: needs no advice (Prop. 2)";
    rows.push_back(std::move(row));
  }
  {  // consensus: class 1 (Ω).
    auto task = std::make_shared<ConsensusTask>(n);
    ValueVec in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);  // all-distinct: hardest
    rows.push_back(classify(task, one_conc_body(task, "cons"), in, n, cfg));
  }
  for (int k = 2; k < n; ++k) {  // k-set agreement: class k.
    auto task = std::make_shared<SetAgreementTask>(n, k);
    ValueVec in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
    rows.push_back(classify(task, one_conc_body(task, "ksa" + std::to_string(k)), in, n, cfg));
  }
  if (n >= 3) {  // strong 2-renaming: class 1 (Cor. 13).
    auto task = std::make_shared<RenamingTask>(RenamingTask::strong(n, 2));
    const ValueVec in = task->sample_input(0);
    RenamingConfig rcfg{"sren", n};
    auto row = classify(
        task, [rcfg](int, Value input) { return make_renaming_kconc(rcfg, input); }, in, n, cfg);
    row.note = "strong renaming == consensus (Cor. 13)";
    rows.push_back(std::move(row));
  }
  if (n >= 4) {  // (3, 4)-renaming with the Fig. 4 algorithm: level >= 2.
    auto task = std::make_shared<RenamingTask>(n, 3, 4);
    const ValueVec in = task->sample_input(0);
    RenamingConfig rcfg{"ren34", n};
    auto row = classify(
        task, [rcfg](int, Value input) { return make_renaming_kconc(rcfg, input); }, in, n, cfg);
    row.note = "exact maximal level open for some (j,k) (paper fn. 4)";
    rows.push_back(std::move(row));
  }
  {  // participating set: wait-free via immediate snapshot (class n).
    auto task = std::make_shared<ParticipatingSetTask>(n);
    const ParticipatingSetConfig pcfg{"ps", n};
    auto body = [pcfg](int, Value input) { return make_participating_set_solver(pcfg, input); };
    ExploreConfig ps_cfg = cfg;
    ps_cfg.max_depth = 600;  // immediate snapshot takes O(n^2) steps per process
    auto row = classify(task, body, task->sample_input(2), n, ps_cfg);
    // Preserve a budget note: the solver is wait-free, but certifying high
    // levels exhaustively can exceed the exploration budget.
    const std::string tag = "wait-free via one-shot immediate snapshot";
    row.note = row.note.empty() ? tag : row.note + "; " + tag;
    rows.push_back(std::move(row));
  }
  {  // weak symmetry breaking with the generic solver.
    auto task = std::make_shared<WeakSymmetryBreakingTask>(n);
    auto row = classify(task, one_conc_body(task, "wsb"), task->sample_input(3), n, cfg);
    row.note = "level of the generic solver; the task's own class is open here";
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string format_hierarchy(const std::vector<HierarchyRow>& rows) {
  std::ostringstream os;
  os << "task                                 | level | weakest FD            | violation at level+1\n";
  os << "-------------------------------------+-------+-----------------------+---------------------\n";
  for (const auto& r : rows) {
    std::string name = r.task;
    name.resize(36, ' ');
    std::string fd = r.weakest_fd;
    fd.resize(21, ' ');
    os << name << " |   " << r.observed_level << (r.level_exhausted ? "+ " : "  ") << " | " << fd
       << " | "
       << (r.violation.empty() ? std::string("-") : r.violation);
    if (!r.note.empty()) os << "  [" << r.note << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace efd
