// Liveness monitors: quantitative wait-freedom certification of one run.
//
// The paper's central liveness claim is that C-processes are wait-free WITH
// RESPECT TO THEIR OWN STEPS: in the runs the task's concurrency contract
// allows, every C-process decides within a bounded number of ITS OWN
// (non-null) steps, no matter how S-processes crash or how bad the advice is
// before stabilization. The LivenessMonitor turns that into a checkable,
// quantified run property:
//
//  * wait-freedom bound  — a C-process exceeding `own_steps_to_decide` of its
//    own steps without deciding is a violation (the bound is per-target and
//    scales with the advice stabilization time, see core/campaign);
//  * starvation watchdog — a scheduling-fairness observation: an unfinished
//    C-process unscheduled for more than `starvation_window` global steps.
//    Starvation is the SCHEDULE's doing, not the algorithm's — campaigns
//    report it separately and never count it against the algorithm;
//  * livelock watchdog   — C-processes collectively taking more than
//    `livelock_window` non-null steps with no decision or termination
//    anywhere: the "everyone works, nobody finishes" shape of Fig. 1.
//  * retransmit-storm watchdog — C-processes collectively issuing more than
//    `retransmit_storm_window` SEND steps with no decision anywhere.
//    Separates "messages were lost, the protocol retried and recovered"
//    (bounded send burst between decisions) from genuine retransmission
//    livelock under lossy links: an ack/retransmit layer whose backoff is
//    broken resends forever, and only the send-step counter sees it —
//    lock-step polling keeps the generic livelock drought low.
//
// The monitor is attachment-based and O(1) per step (a few integer updates),
// so it can stay on in fuzzing and campaign drives; a World without an
// attached monitor pays one pointer test per step (measured ≤ noise on the
// E14 exploration hot loop, see EXPERIMENTS.md E15). Bounds set to 0 disable
// the corresponding check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/telemetry.hpp"
#include "sim/ids.hpp"
#include "sim/world.hpp"

namespace efd {

/// Step bounds of one monitored run; 0 disables a check.
struct MonitorBounds {
  std::int64_t own_steps_to_decide = 0;  ///< wait-freedom: own non-null steps before deciding
  std::int64_t starvation_window = 0;    ///< max global-step gap for an unfinished C-process
  std::int64_t livelock_window = 0;      ///< max collective C-steps without any progress event
  std::int64_t retransmit_storm_window = 0;  ///< max collective C sends without a decision
};

struct MonitorViolation {
  enum class Kind : std::uint8_t { kWaitFree, kStarvation, kLivelock, kRetransmitStorm };
  Kind kind{Kind::kWaitFree};
  Pid pid{};                 ///< offending C-process (livelock: the last stepper)
  std::int64_t measured = 0; ///< the quantity that broke the bound
  std::int64_t bound = 0;    ///< the bound it broke
  std::int64_t at_step = 0;  ///< global monitored step where it was detected

  [[nodiscard]] const char* kind_name() const;
  [[nodiscard]] std::string to_string() const;
};

/// Per-run liveness certifier. Attach with World::attach_observer before
/// driving; call finalize(w) once the drive stopped to flush end-of-run
/// starvation gaps. Violations are recorded once per (kind, process).
class LivenessMonitor final : public StepObserver {
 public:
  explicit LivenessMonitor(MonitorBounds bounds = {}) : bounds_(bounds) {}

  /// One scheduled, non-refused step of `pid`. O(1).
  void on_step(Pid pid, OpKind op, bool null_step, bool decided_now,
               bool terminated_now) override;

  /// Flushes end-of-run starvation gaps for `w`'s unfinished C-processes
  /// (including ones never scheduled at all). Idempotent per run.
  void finalize(const World& w);

  /// No wait-freedom violation (the algorithm-level certificate).
  [[nodiscard]] bool wait_free_ok() const;
  /// No violation of any kind (wait-freedom + both watchdogs).
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<MonitorViolation>& violations() const { return violations_; }
  [[nodiscard]] const MonitorBounds& bounds() const noexcept { return bounds_; }

  // -- quantified run shape (valid any time; final after finalize) --
  [[nodiscard]] std::int64_t monitored_steps() const noexcept { return step_; }
  [[nodiscard]] std::int64_t decisions() const noexcept { return decisions_; }
  /// Worst own-step count at the moment of decision, over decided C-processes.
  [[nodiscard]] std::int64_t max_own_steps_to_decide() const noexcept { return max_to_decide_; }
  /// Worst own-step count reached by a C-process while still undecided.
  [[nodiscard]] std::int64_t max_own_steps_undecided() const noexcept { return max_undecided_; }
  /// Largest observed scheduling gap of an unfinished C-process.
  [[nodiscard]] std::int64_t max_starvation_gap() const noexcept { return max_gap_; }
  /// Largest observed run of collective C-steps without a progress event.
  [[nodiscard]] std::int64_t max_decision_drought() const noexcept { return max_drought_; }
  /// Largest observed run of collective C send steps without a decision.
  [[nodiscard]] std::int64_t max_send_burst() const noexcept { return max_send_burst_; }

  /// The monitor block of the telemetry JSON (bounds, quantities, violations).
  [[nodiscard]] telemetry::Json to_json() const;

 private:
  struct CTrack {
    std::int64_t own_steps = 0;
    std::int64_t last_sched = 0;  ///< global step of the last scheduled step
    std::int64_t steps_to_decide = -1;
    bool seen = false;
    bool decided = false;
    bool finished = false;  ///< decided or terminated
    bool flagged_waitfree = false;
    bool flagged_starved = false;
  };

  CTrack& track(int ci);
  void record(MonitorViolation::Kind kind, Pid pid, std::int64_t measured, std::int64_t bound);

  MonitorBounds bounds_;
  std::vector<CTrack> c_;
  std::vector<MonitorViolation> violations_;
  std::int64_t step_ = 0;
  std::int64_t decisions_ = 0;
  std::int64_t max_to_decide_ = 0;
  std::int64_t max_undecided_ = 0;
  std::int64_t max_gap_ = 0;
  std::int64_t drought_ = 0;      ///< collective C-steps since the last progress event
  std::int64_t max_drought_ = 0;
  std::int64_t send_burst_ = 0;   ///< collective C send steps since the last decision
  std::int64_t max_send_burst_ = 0;
  bool flagged_livelock_ = false;
  bool flagged_storm_ = false;
  bool finalized_ = false;
};

}  // namespace efd
