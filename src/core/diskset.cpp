#include "core/diskset.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace efd {
namespace {

constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

[[noreturn]] void die(const std::string& what) {
  throw std::runtime_error("diskset: " + what + ": " + std::strerror(errno));
}

std::string default_dir_root() {
  if (const char* d = std::getenv("EFD_DEDUP_DIR"); d != nullptr && *d != '\0') return d;
  if (const char* t = std::getenv("TMPDIR"); t != nullptr && *t != '\0') return t;
  return "/tmp";
}

/// Tier-0 cache: one direct-mapped signature array per (thread, store).
/// `owner` is the owning store's nonce — a thread that alternates between
/// stores simply re-seeds the array. Only signatures that are KNOWN inserted
/// are written here, so a hit is always a true duplicate. Signature 0 is
/// never cached (0 marks an empty slot).
struct RecentCache {
  std::uint64_t owner = 0;
  std::vector<std::uint64_t> slots;
};
thread_local RecentCache t_recent;

std::atomic<std::uint64_t> g_store_nonce{1};

}  // namespace

// ---------------------------------------------------------------------------
// DedupConfig
// ---------------------------------------------------------------------------

DedupConfig DedupConfig::from_env() {
  DedupConfig cfg;
  if (const char* t = std::getenv("EFD_DEDUP_TIERS"); t != nullptr && *t != '\0') {
    const std::string tiers(t);
    if (tiers == "tiered" || tiers == "disk") {
      cfg.disk_tier = true;
    } else if (tiers != "mem") {
      throw std::runtime_error("EFD_DEDUP_TIERS must be \"mem\" or \"tiered\", got \"" + tiers +
                               "\"");
    }
  }
  if (const char* m = std::getenv("EFD_DEDUP_MEM_MB"); m != nullptr && *m != '\0') {
    char* end = nullptr;
    const long long mb = std::strtoll(m, &end, 10);
    if (end == m || *end != '\0' || mb < 0) {
      throw std::runtime_error("EFD_DEDUP_MEM_MB must be a non-negative integer");
    }
    cfg.mem_budget_bytes = static_cast<std::size_t>(mb) * 1024 * 1024;
  }
  if (const char* d = std::getenv("EFD_DEDUP_DIR"); d != nullptr && *d != '\0') {
    cfg.spill_dir = d;
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// DiskTier::Bloom — two-probe bloom filter at ~16 bits per expected key
// (false-positive rate ≈ 1.5%; every positive is verified against the runs,
// so a false positive costs a binary search, never a wrong answer).
// ---------------------------------------------------------------------------

void DiskTier::Bloom::reset(std::size_t expected_keys) {
  std::size_t bits = 1024;
  while (bits < expected_keys * 16) bits *= 2;
  words.assign(bits / 64, 0);
}

void DiskTier::Bloom::add(std::uint64_t sig) noexcept {
  const std::uint64_t h = mix64(sig);
  const std::uint64_t mask = words.size() * 64 - 1;
  const std::uint64_t b1 = h & mask;
  const std::uint64_t b2 = (h >> 32 | h << 32) & mask;
  words[b1 / 64] |= 1ULL << (b1 % 64);
  words[b2 / 64] |= 1ULL << (b2 % 64);
}

bool DiskTier::Bloom::maybe(std::uint64_t sig) const noexcept {
  if (words.empty()) return false;
  const std::uint64_t h = mix64(sig);
  const std::uint64_t mask = words.size() * 64 - 1;
  const std::uint64_t b1 = h & mask;
  const std::uint64_t b2 = (h >> 32 | h << 32) & mask;
  return (words[b1 / 64] >> (b1 % 64) & 1) != 0 && (words[b2 / 64] >> (b2 % 64) & 1) != 0;
}

// ---------------------------------------------------------------------------
// DiskTier
// ---------------------------------------------------------------------------

DiskTier::DiskTier(std::string dir_root)
    : dir_root_(dir_root.empty() ? default_dir_root() : std::move(dir_root)),
      shards_(ShardedSigSet::kShards) {}

DiskTier::~DiskTier() {
  for (Shard& s : shards_) {
    for (Run& r : s.runs) drop_run(r);
  }
  if (!dir_.empty()) ::rmdir(dir_.c_str());  // runs are unlinked at mmap time
}

std::string DiskTier::dir() const {
  std::lock_guard<std::mutex> lk(dir_mu_);
  return dir_;
}

void DiskTier::ensure_dir() {
  std::lock_guard<std::mutex> lk(dir_mu_);
  if (!dir_.empty()) return;
  std::string tmpl = dir_root_ + "/efd-dedup-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) die("mkdtemp " + tmpl);
  dir_.assign(buf.data());
}

/// Writes `sigs` (sorted, distinct) as one run file, maps it read-only and
/// unlinks it immediately — the mapping keeps the data alive, the directory
/// entry never outlives a crash.
DiskTier::Run DiskTier::write_run(const std::vector<std::uint64_t>& sigs, std::size_t shard) {
  ensure_dir();
  const std::string path = dir_ + "/shard" + std::to_string(shard) + "-run" +
                           std::to_string(run_seq_.fetch_add(1, std::memory_order_relaxed)) +
                           ".sigs";
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) die("open " + path);
  const auto* bytes = reinterpret_cast<const char*>(sigs.data());
  std::size_t total = sigs.size() * sizeof(std::uint64_t);
  std::size_t off = 0;
  while (off < total) {
    const ssize_t n = ::write(fd, bytes + off, total - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(path.c_str());
      die("write " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  Run r;
  r.bytes = total;
  r.count = sigs.size();
  r.map = ::mmap(nullptr, total, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  ::unlink(path.c_str());
  if (r.map == MAP_FAILED) die("mmap " + path);
  r.data = static_cast<const std::uint64_t*>(r.map);
  return r;
}

void DiskTier::drop_run(Run& r) noexcept {
  if (r.map != nullptr && r.map != MAP_FAILED) ::munmap(r.map, r.bytes);
  r = Run{};
}

bool DiskTier::contains(std::size_t shard, std::uint64_t sig) {
  Shard& s = shards_[shard];
  if (s.runs.empty()) return false;
  cold_probes_.fetch_add(1, std::memory_order_relaxed);
  if (!s.bloom.maybe(sig)) {
    bloom_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Newest-first: DFS dedup hits skew heavily toward recent spills.
  for (auto it = s.runs.rbegin(); it != s.runs.rend(); ++it) {
    if (std::binary_search(it->data, it->data + it->count, sig)) {
      cold_hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void DiskTier::spill(std::size_t shard, FlatSigSet& set) {
  Shard& s = shards_[shard];
  s.scratch.clear();
  set.drain_into(s.scratch);
  if (s.scratch.empty()) return;
  std::sort(s.scratch.begin(), s.scratch.end());
  Run r = write_run(s.scratch, shard);
  if (s.runs.empty()) s.bloom.reset(s.scratch.size() * 4);
  for (const std::uint64_t sig : s.scratch) s.bloom.add(sig);
  s.runs.push_back(r);
  s.spilled += s.scratch.size();
  spills_.fetch_add(1, std::memory_order_relaxed);
  spilled_sigs_.fetch_add(static_cast<std::int64_t>(s.scratch.size()),
                          std::memory_order_relaxed);
  spill_bytes_.fetch_add(static_cast<std::int64_t>(r.bytes), std::memory_order_relaxed);
  if (s.runs.size() >= kMergeRuns) merge_shard(s, shard);
}

/// Compacts a shard's runs into one and re-sizes the bloom for the merged
/// population (an in-place bloom saturates as spills accumulate; the merge
/// checkpoint is where it is rebuilt at the target bits-per-key). Runs of
/// one shard are disjoint — a signature is only ever inserted after missing
/// the cold tier — so this is a pure k-way merge without dedup.
void DiskTier::merge_shard(Shard& s, std::size_t shard_idx) {
  s.scratch.clear();
  s.scratch.reserve(s.spilled);
  for (const Run& r : s.runs) s.scratch.insert(s.scratch.end(), r.data, r.data + r.count);
  std::sort(s.scratch.begin(), s.scratch.end());
  Run merged = write_run(s.scratch, shard_idx);
  for (Run& r : s.runs) drop_run(r);
  s.runs.clear();
  s.runs.push_back(merged);
  s.bloom.reset(s.scratch.size());
  for (const std::uint64_t sig : s.scratch) s.bloom.add(sig);
  merges_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TieredSigSet
// ---------------------------------------------------------------------------

namespace {
std::size_t per_shard_budget(const DedupConfig& cfg) noexcept {
  if (cfg.mem_budget_bytes == 0) return 0;
  // Floor at 4 KiB so a tiny test budget still leaves a probe-able table
  // between spills rather than spilling on every insert.
  return std::max<std::size_t>(cfg.mem_budget_bytes / ShardedSigSet::kShards, 4096);
}
}  // namespace

TieredSigSet::TieredSigSet(const DedupConfig& cfg)
    : cfg_(cfg),
      disk_(cfg.disk_tier ? std::make_unique<DiskTier>(cfg.spill_dir) : nullptr),
      mem_(per_shard_budget(cfg), disk_.get()),
      id_(g_store_nonce.fetch_add(1, std::memory_order_relaxed)) {}

bool TieredSigSet::insert(std::uint64_t sig) {
  std::size_t slot = 0;
  const bool use_recent = cfg_.recent_bits > 0;
  if (use_recent) {
    RecentCache& rc = t_recent;
    const std::size_t want = std::size_t{1} << cfg_.recent_bits;
    if (rc.owner != id_ || rc.slots.size() != want) {
      rc.owner = id_;
      rc.slots.assign(want, 0);
    }
    slot = static_cast<std::size_t>(mix64(sig)) & (want - 1);
    if (sig != 0 && rc.slots[slot] == sig) {
      recent_hits_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  const bool fresh = mem_.insert(sig);
  if (!fresh) dup_returns_.fetch_add(1, std::memory_order_relaxed);
  if (use_recent) t_recent.slots[slot] = sig;
  return fresh;
}

TierStats TieredSigSet::tier_stats() const {
  TierStats t;
  t.recent_hits = recent_hits_.load(std::memory_order_relaxed);
  if (disk_) {
    t.cold_probes = disk_->cold_probes();
    t.bloom_skips = disk_->bloom_skips();
    t.cold_hits = disk_->cold_hits();
    t.spills = disk_->spills();
    t.spilled_sigs = disk_->spilled_sigs();
    t.spill_bytes = disk_->spill_bytes();
    t.merges = disk_->merges();
  }
  t.mem_hits = std::max<std::int64_t>(
      0, dup_returns_.load(std::memory_order_relaxed) - t.cold_hits);
  return t;
}

}  // namespace efd
