#include "core/weakest.hpp"

#include <set>

#include "algo/set_agreement_antiomega.hpp"
#include "fd/reduction.hpp"
#include "sim/schedule.hpp"

namespace efd {

RoundTripResult weakest_fd_round_trip(const DetectorPtr& d, RoundTripConfig cfg) {
  RoundTripResult out;
  if (cfg.pattern.n() == 0) cfg.pattern = FailurePattern(cfg.n);

  // Direction 1 (Thm. 9 face): D solves k-set agreement among all n.
  {
    World w(cfg.pattern, d->history(cfg.pattern, cfg.seed));
    const KsaConfig ksa{"wrt", cfg.n, cfg.k};
    for (int i = 0; i < cfg.n; ++i) w.spawn_c(i, make_ksa_client(ksa, Value(i)));
    for (int i = 0; i < cfg.n; ++i) w.spawn_s(i, make_ksa_server(ksa));
    RandomScheduler rs(cfg.seed + 3);
    const DriveResult r = drive(w, rs, cfg.solve_steps);
    out.solve_steps = r.steps;
    std::set<Value> vals;
    for (int i = 0; i < cfg.n; ++i) {
      if (w.decided(cpid(i))) vals.insert(w.decision(cpid(i)));
    }
    out.distinct = vals.size();
    out.solved = r.all_c_decided && static_cast<int>(vals.size()) <= cfg.k;
  }

  // Direction 2 (Thm. 8 face): the Fig. 1 extraction emulates ¬Ωk from D.
  {
    ExtractionConfig ex = cfg.extraction;
    ex.n = cfg.n;
    ex.k = cfg.k;
    std::vector<ProcBody> bodies;
    for (int i = 0; i < cfg.n; ++i) bodies.push_back(make_extraction_sproc(ex));
    const ReductionRun run = run_reduction(cfg.pattern, d, cfg.seed, bodies, cfg.extract_steps);
    const auto h = emulated_history_from_trace(run.trace, ex);
    out.horizon = run.horizon;
    out.anti_omega_ok = AntiOmegaK::check(cfg.k, cfg.pattern, *h, run.horizon);
  }
  return out;
}

}  // namespace efd
