#include "core/shrink.hpp"

#include <algorithm>

namespace efd {
namespace {

/// Removes steps [begin, end) and remaps crash-point indices: points past
/// the removed range shift left, points inside it snap to `begin` (the crash
/// still happens, at the seam — step removal never silently drops a fault).
ScheduleTape without_steps(const ScheduleTape& t, std::size_t begin, std::size_t end) {
  ScheduleTape out = t;
  out.steps.erase(out.steps.begin() + static_cast<std::ptrdiff_t>(begin),
                  out.steps.begin() + static_cast<std::ptrdiff_t>(end));
  const auto removed = static_cast<std::int64_t>(end - begin);
  for (auto& c : out.crashes) {
    if (c.step_index >= static_cast<std::int64_t>(end)) {
      c.step_index -= removed;
    } else if (c.step_index > static_cast<std::int64_t>(begin)) {
      c.step_index = static_cast<std::int64_t>(begin);
    }
  }
  for (auto& p : out.linkfaults) {
    if (p.step_index >= static_cast<std::int64_t>(end)) {
      p.step_index -= removed;
    } else if (p.step_index > static_cast<std::int64_t>(begin)) {
      p.step_index = static_cast<std::int64_t>(begin);
    }
  }
  out.expect_hash.reset();  // certified the original schedule only
  return out;
}

ScheduleTape without_crash(const ScheduleTape& t, std::size_t idx) {
  ScheduleTape out = t;
  out.crashes.erase(out.crashes.begin() + static_cast<std::ptrdiff_t>(idx));
  out.expect_hash.reset();
  return out;
}

ScheduleTape without_linkfault(const ScheduleTape& t, std::size_t idx) {
  ScheduleTape out = t;
  out.linkfaults.erase(out.linkfaults.begin() + static_cast<std::ptrdiff_t>(idx));
  out.expect_hash.reset();
  return out;
}

}  // namespace

ScheduleTape shrink_tape(ScheduleTape tape, const TapePredicate& still_fails,
                         const ShrinkOptions& opts, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  st = ShrinkStats{};

  ++st.candidates;
  if (!still_fails(tape)) return tape;  // not a counterexample: nothing to do

  auto try_adopt = [&](const ScheduleTape& cand) {
    ++st.candidates;
    if (!still_fails(cand)) return false;
    st.removed_steps += static_cast<std::int64_t>(tape.steps.size() - cand.steps.size());
    st.removed_crashes += static_cast<std::int64_t>(tape.crashes.size() - cand.crashes.size());
    st.removed_linkfaults +=
        static_cast<std::int64_t>(tape.linkfaults.size() - cand.linkfaults.size());
    tape = cand;
    return true;
  };

  for (st.rounds = 1; st.rounds <= opts.max_rounds; ++st.rounds) {
    bool changed = false;

    // 1. Trailing suffix: greedily halve the truncation length.
    for (std::size_t cut = tape.steps.size() / 2; cut >= 1;) {
      if (cut <= tape.steps.size() &&
          try_adopt(without_steps(tape, tape.steps.size() - cut, tape.steps.size()))) {
        changed = true;
        cut = std::min(cut, tape.steps.size() / 2);
        if (tape.steps.empty()) break;
      } else {
        cut /= 2;
      }
    }

    // 2. ddmin over interior ranges, chunk size halving down to single steps.
    for (std::size_t chunk = std::max<std::size_t>(tape.steps.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (std::size_t i = 0; i + chunk <= tape.steps.size();) {
        if (try_adopt(without_steps(tape, i, i + chunk))) {
          changed = true;  // removed: the next chunk slid into place at i
        } else {
          ++i;
        }
      }
      if (chunk == 1) break;
    }

    // 3. Crash points, one at a time.
    for (std::size_t i = 0; i < tape.crashes.size();) {
      if (try_adopt(without_crash(tape, i))) {
        changed = true;
      } else {
        ++i;
      }
    }

    // 4. Link-fault charges, one at a time (a dropped charge lets the
    // delivery through; the failure must survive without it to adopt).
    for (std::size_t i = 0; i < tape.linkfaults.size();) {
      if (try_adopt(without_linkfault(tape, i))) {
        changed = true;
      } else {
        ++i;
      }
    }

    if (!changed) {
      st.reached_fixpoint = true;
      break;
    }
  }
  return tape;
}

}  // namespace efd
