// Persistent content-hashed tape corpus: the campaign farm's long-term
// memory of findings.
//
// A CorpusStore maps content keys — corpus_key(tape), a fold of the tape's
// scenario, finding kind and replay trace hash — to saved `efd-tape-v1`
// files in one directory. The farm (core/campaign.hpp, run_farm) classifies
// every violation against it:
//
//  * a key already present is a DUPLICATE: the finding was seen by an
//    earlier campaign (possibly a different plan shrinking to the same
//    1-minimal tape) and costs nothing beyond the lookup;
//  * a novel key is inserted atomically (write to a temp file in the corpus
//    directory, then rename), so a crash mid-insert never leaves a partial
//    tape — restart-with-corpus resumes from exactly the set of completed
//    inserts.
//
// Because ddmin converges different discoveries of the same bug onto the
// same minimal schedule, keying SAFETY findings by their SHRUNK tape's trace
// hash makes rediscovery cheap across plans, seeds and restarts. The farm
// additionally records raw-tape ALIASES (raw key -> stored key) in an
// append-only `aliases.idx` so an exact plan rediscovery is classified
// duplicate without re-shrinking.
//
// Robustness: open() scans the directory and moves entries that fail to
// parse (truncated writes from a crashed foreign process, hand-edited
// garbage) into `<dir>/quarantine/` instead of failing — a corrupt corpus
// entry must never take the farm down. absorb() indexes a read-only seed
// directory (tests/corpus/) without writing to it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/replay.hpp"

namespace efd {

/// A corpus directory could not be created, read or written. Tools map this
/// (and campaign save-dir failures) to a distinct exit code: losing tapes
/// silently is the one failure mode a fuzzing service must not have.
class CorpusIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Content key of a finding tape: a deterministic fold of the scenario name,
/// the finding kind line, and the tape's expected replay trace hash. Stable
/// across processes, restarts and directories — the same minimal tape always
/// keys the same.
[[nodiscard]] std::uint64_t corpus_key(const ScheduleTape& tape);

class CorpusStore {
 public:
  struct LoadReport {
    int loaded = 0;       ///< entries indexed (absorb + open)
    int quarantined = 0;  ///< malformed entries moved aside (open only)
    int aliases = 0;      ///< raw-tape aliases restored from aliases.idx
  };

  CorpusStore() = default;  ///< in-memory only until open() is called

  /// Binds the store to `dir` (created if missing), scans its *.tape entries
  /// and its aliases.idx. Malformed entries are moved to `dir`/quarantine/.
  /// Throws CorpusIoError when the directory cannot be created or scanned.
  LoadReport open(const std::string& dir);

  /// Indexes a read-only directory of tapes (non-recursive; the seed corpus
  /// in tests/corpus/). Malformed entries are counted and skipped, never
  /// moved: the directory is not ours. A missing directory is a no-op.
  LoadReport absorb(const std::string& dir);

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return entries_.count(key) != 0 || aliases_.count(key) != 0;
  }

  /// First-insert-wins. When novel and directory-backed, writes the tape
  /// atomically as `<stem>_<key-hex>.tape` (temp file + rename) and returns
  /// true; `path_out`, when non-null, receives the stored path ("" for an
  /// in-memory store). Returns false (and writes nothing) for a known key.
  /// Throws CorpusIoError when the write fails.
  bool insert(std::uint64_t key, const ScheduleTape& tape, const std::string& stem,
              std::string* path_out = nullptr);

  /// Records that raw-tape key `alias` denotes the stored finding `target`
  /// (appended to aliases.idx when directory-backed, so exact rediscoveries
  /// stay cheap across restarts). No-op when `alias` is already known.
  void add_alias(std::uint64_t alias, std::uint64_t target);

  /// Stored path of a key ("" when unknown or absorbed without a path).
  [[nodiscard]] std::string path_of(std::uint64_t key) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t alias_count() const { return aliases_.size(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  LoadReport scan(const std::string& dir, bool quarantine);

  std::string dir_;  ///< "" = in-memory
  std::unordered_map<std::uint64_t, std::string> entries_;  ///< key -> path
  std::unordered_map<std::uint64_t, std::uint64_t> aliases_;  ///< raw key -> stored key
};

}  // namespace efd
