// Small concurrency utilities for the parallel exploration frontier
// (core/solvability, core/bivalence):
//
//  * WorkStealingPool — batch executor: a fixed set of tasks is dealt
//    round-robin onto per-worker deques; each worker drains its own deque
//    LIFO and steals FIFO from the others when empty. No dynamic task
//    spawning — the explorers shard a DFS frontier up front, so a worker
//    may exit as soon as every deque is empty.
//
//  * ShardedSigSet — concurrent signature (de-dup) set: 64 mutex-striped
//    hash sets keyed by a mixed shard index. insert() is first-insert-wins,
//    which is what makes the parallel explorers' clean-sweep state counts
//    thread-count-invariant (see DESIGN.md, "Exploration engine"). It is
//    also the hot middle tier of the tiered dedup store (core/diskset.hpp):
//    an optional per-shard byte budget + ColdTier hook spill overflowing
//    shards to bloom-prefiltered disk runs, all under the shard mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/sigset.hpp"

namespace efd {

/// Telemetry of one WorkStealingPool::run call. Steals count tasks a worker
/// pulled from ANOTHER worker's deque — a measure of how unevenly the
/// frontier shards were sized, not of correctness (clean-sweep outcomes are
/// thread-count-invariant regardless).
struct PoolStats {
  std::int64_t tasks = 0;                 ///< tasks executed in total
  std::int64_t steals = 0;                ///< tasks executed off a foreign deque
  std::vector<std::int64_t> per_worker;   ///< tasks executed by each worker
};

class WorkStealingPool {
 public:
  /// Runs every task to completion on `threads` workers (the calling thread
  /// is worker 0; `threads - 1` std::threads are spawned). Exceptions thrown
  /// by tasks are rethrown on the calling thread after all workers join
  /// (first one wins). threads <= 1 degenerates to a sequential loop.
  /// `stats`, when non-null, is overwritten with this run's telemetry.
  static void run(std::vector<std::function<void()>>&& tasks, int threads,
                  PoolStats* stats = nullptr);
};

/// Resident variant of WorkStealingPool: a fixed crew of worker threads is
/// spawned once and parked on a condition variable between run() calls.
/// Batch semantics are identical to WorkStealingPool::run (calling thread
/// is worker 0, LIFO own-deque / FIFO steal, first task exception rethrown
/// after the batch completes) — but the crew persists, so thread-local
/// state stays warm across batches. That matters for callers issuing many
/// small batches: the campaign farm runs thousands of batches per minute,
/// and per-call std::thread spawn left every batch's workers with cold
/// register-interner memos and allocator arenas (measured as NEGATIVE
/// scaling — 8 workers slower than 1 — before this class existed).
class ResidentPool {
 public:
  /// Spawns `threads - 1` persistent workers (clamped to >= 1; with one
  /// thread every run() degenerates to an inline sequential loop).
  explicit ResidentPool(int threads);
  ~ResidentPool();
  ResidentPool(const ResidentPool&) = delete;
  ResidentPool& operator=(const ResidentPool&) = delete;

  /// Runs every task to completion and returns once all have finished.
  /// The calling thread participates as worker 0. Not reentrant: callers
  /// must not overlap run() invocations on the same pool.
  void run(std::vector<std::function<void()>>&& tasks, PoolStats* stats = nullptr);

  [[nodiscard]] int threads() const noexcept { return threads_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  ///< null when threads_ == 1
  int threads_ = 1;
};

class ShardedSigSet {
 public:
  static constexpr std::size_t kShards = 64;

  /// Cold storage a shard overflows into (core/diskset.hpp implements this
  /// over bloom-prefiltered mmap'd sorted runs). Both methods are invoked
  /// UNDER the owning shard's mutex, so per-shard cold state needs no
  /// further synchronization.
  class ColdTier {
   public:
    virtual ~ColdTier() = default;
    /// True iff `sig` was spilled to this shard's cold storage earlier.
    virtual bool contains(std::size_t shard, std::uint64_t sig) = 0;
    /// Moves the shard's in-memory contents to cold storage (the set is
    /// drained and reset to its initial footprint).
    virtual void spill(std::size_t shard, FlatSigSet& set) = 0;
  };

  ShardedSigSet() = default;
  /// Budgeted form: when a shard's table crosses `shard_byte_budget` bytes
  /// after an insert, it is spilled into `cold` — or, with no cold tier,
  /// the set latches mem_exhausted() so the sweep can stop and report a
  /// lower bound instead of growing without bound.
  ShardedSigSet(std::size_t shard_byte_budget, ColdTier* cold)
      : shard_budget_(shard_byte_budget), cold_(cold) {}

  /// True iff `sig` was not present in the shard OR its cold storage (first
  /// insert wins). Thread-safe; the whole probe-insert-spill sequence holds
  /// the shard mutex, which is what keeps clean-sweep counts
  /// thread-count-invariant with the disk tier active.
  bool insert(std::uint64_t sig) {
    const std::size_t idx = shard_of(sig);
    Shard& s = shards_[idx];
    std::lock_guard<std::mutex> lk(s.mu);
    if (cold_ == nullptr && shard_budget_ == 0) {
      const bool fresh = s.set.insert(sig);
      if (fresh) size_.fetch_add(1, std::memory_order_relaxed);
      return fresh;
    }
    if (s.set.contains(sig)) return false;
    if (cold_ != nullptr && cold_->contains(idx, sig)) return false;
    s.set.insert(sig);
    size_.fetch_add(1, std::memory_order_relaxed);
    if (shard_budget_ != 0 && s.set.bytes() > shard_budget_) {
      if (cold_ != nullptr) {
        cold_->spill(idx, s.set);
      } else {
        mem_exhausted_.store(true, std::memory_order_relaxed);
      }
    }
    return true;
  }

  /// Signatures ever first-inserted (in-memory + spilled). Maintained as one
  /// atomic counter, so a mid-sweep read is never torn: it is exactly the
  /// number of successful insert() calls that happened-before the load
  /// (the old implementation locked stripes one at a time and could return
  /// a total no single moment ever exhibited).
  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  /// True once any shard crossed its byte budget with no cold tier to spill
  /// into (memory-capped mem-only mode).
  [[nodiscard]] bool mem_exhausted() const noexcept {
    return mem_exhausted_.load(std::memory_order_relaxed);
  }

  /// Bytes currently held by the in-memory shard tables (snapshot; shards
  /// are sampled one at a time).
  [[nodiscard]] std::size_t mem_bytes() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.set.bytes();
    }
    return n;
  }

 private:
  static std::size_t shard_of(std::uint64_t sig) noexcept {
    // Fibonacci mix so consecutive sigs don't pile onto one stripe.
    return static_cast<std::size_t>((sig * 0x9E3779B97F4A7C15ULL) >> 58) % kShards;
  }

  struct Shard {
    mutable std::mutex mu;
    FlatSigSet set;  ///< flat probing set: no node alloc per insert
  };
  Shard shards_[kShards];
  std::size_t shard_budget_ = 0;  ///< bytes per shard; 0 = unlimited
  ColdTier* cold_ = nullptr;      ///< overflow target; null = latch exhaustion
  std::atomic<std::size_t> size_{0};
  std::atomic<bool> mem_exhausted_{false};
};

}  // namespace efd
