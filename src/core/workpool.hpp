// Small concurrency utilities for the parallel exploration frontier
// (core/solvability, core/bivalence):
//
//  * WorkStealingPool — batch executor: a fixed set of tasks is dealt
//    round-robin onto per-worker deques; each worker drains its own deque
//    LIFO and steals FIFO from the others when empty. No dynamic task
//    spawning — the explorers shard a DFS frontier up front, so a worker
//    may exit as soon as every deque is empty.
//
//  * ShardedSigSet — concurrent signature (de-dup) set: 64 mutex-striped
//    hash sets keyed by a mixed shard index. insert() is first-insert-wins,
//    which is what makes the parallel explorers' clean-sweep state counts
//    thread-count-invariant (see DESIGN.md, "Exploration engine").
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/sigset.hpp"

namespace efd {

/// Telemetry of one WorkStealingPool::run call. Steals count tasks a worker
/// pulled from ANOTHER worker's deque — a measure of how unevenly the
/// frontier shards were sized, not of correctness (clean-sweep outcomes are
/// thread-count-invariant regardless).
struct PoolStats {
  std::int64_t tasks = 0;                 ///< tasks executed in total
  std::int64_t steals = 0;                ///< tasks executed off a foreign deque
  std::vector<std::int64_t> per_worker;   ///< tasks executed by each worker
};

class WorkStealingPool {
 public:
  /// Runs every task to completion on `threads` workers (the calling thread
  /// is worker 0; `threads - 1` std::threads are spawned). Exceptions thrown
  /// by tasks are rethrown on the calling thread after all workers join
  /// (first one wins). threads <= 1 degenerates to a sequential loop.
  /// `stats`, when non-null, is overwritten with this run's telemetry.
  static void run(std::vector<std::function<void()>>&& tasks, int threads,
                  PoolStats* stats = nullptr);
};

class ShardedSigSet {
 public:
  /// True iff `sig` was not present (first insert wins). Thread-safe.
  bool insert(std::uint64_t sig) {
    Shard& s = shards_[shard_of(sig)];
    std::lock_guard<std::mutex> lk(s.mu);
    return s.set.insert(sig);
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lk(s.mu);
      n += s.set.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 64;

  static std::size_t shard_of(std::uint64_t sig) noexcept {
    // Fibonacci mix so consecutive sigs don't pile onto one stripe.
    return static_cast<std::size_t>((sig * 0x9E3779B97F4A7C15ULL) >> 58) % kShards;
  }

  struct Shard {
    mutable std::mutex mu;
    FlatSigSet set;  ///< flat probing set: no node alloc per insert
  };
  Shard shards_[kShards];
};

}  // namespace efd
