// Task-level reductions around strong renaming (paper §5, Lemma 11, Cor. 13).
//
// Cor. 13 says strong renaming ≡ consensus (weakest detector Ω). Both
// directions are implemented as real algorithms:
//
//  * consensus ⇒ strong renaming ("slot claiming"): names 1..j are awarded by
//    a chain of Ω-driven consensus instances; instance t elects, among the
//    participants not yet named by instances < t, the one with the smallest
//    id. Every participant gets a distinct name in 1..j.
//
//  * strong renaming ⇒ consensus (the Lemma 11 construction, verbatim):
//    both processes publish their proposals, run the given 2-process strong
//    renaming algorithm, and the process that obtains name 1 wins — it
//    decides its own proposal, the other adopts the winner's. Validity holds
//    because a name ≠ 1 proves the other process participated (wrote its
//    proposal first).
#pragma once

#include "algo/sim_program.hpp"
#include "sim/world.hpp"

namespace efd {

struct SlotRenamingConfig {
  std::string ns = "slots";
  int n = 0;  ///< C-processes = S-processes
  int j = 0;  ///< max participants = namespace size (strong renaming)
};

/// C-process p_{i+1} with original name `input`: registers, then watches the
/// slot decisions and decides t when slot t elects its id.
ProcBody make_slot_renaming_client(SlotRenamingConfig cfg, Value input);

/// S-process q_{i+1}: fills slots 1..j in order with Ω-led Paxos, proposing
/// the smallest registered id not yet named.
ProcBody make_slot_renaming_server(SlotRenamingConfig cfg);

/// The Lemma 11 construction for processes {0, 1} of the pair instance `ns`:
/// `renaming` must be a strong 2-renaming automaton (names {1, 2}) over the
/// SAME two indices. `me` ∈ {0, 1}.
ProcBody make_consensus_from_renaming(std::string ns, int me, Value input, SimProgramPtr renaming);

}  // namespace efd
