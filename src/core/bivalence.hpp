// FLP-style non-termination witness search (supporting Lemma 11 / Thm. 12).
//
// The paper's impossibility results (wait-free 2-consensus, 2-concurrent
// strong renaming) assert that every candidate restricted algorithm has an
// infinite non-deciding run. For a CONCRETE candidate with finitely many
// reachable configurations, such a run shows up as a reachable cycle in the
// configuration graph whose steps belong to undecided processes — a "lasso".
//
// The searcher operates on SimPrograms (explicit automaton states), so a
// configuration is exactly (local states, memory, decisions) and cycle
// detection is sound: a repeated configuration really is a loop the
// adversarial scheduler can iterate forever. (Coroutine-based algorithms
// can be searched through ReplayProgram only if their step-result history
// is periodic, which it never is — hand the searcher a genuine finite-state
// automaton.) Every reported lasso is re-validated by replaying prefix +
// several cycle iterations and checking that no decision occurs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algo/sim_program.hpp"
#include "sim/regid.hpp"
#include "sim/value.hpp"

namespace efd {

struct LassoConfig {
  std::vector<int> participants;    ///< process indices (full concurrency)
  int max_depth = 400;
  std::int64_t max_states = 200000;
  int validate_iterations = 8;      ///< cycle repetitions for re-validation
  /// >1: search the top-level subtrees concurrently, each with a private
  /// visited/on-stack structure and its own max_states budget (cycle
  /// detection is path-dependent, so shards cannot share a visited set
  /// without missing lassos). The merge is deterministic — the shard with
  /// the smallest first move wins — so results do not depend on the thread
  /// count; `states` sums the (independently deterministic) shard counts.
  int threads = 1;
};

struct LassoResult {
  bool found = false;               ///< a validated non-terminating lasso exists
  bool budget_exhausted = false;
  std::vector<int> prefix;          ///< schedule (participant ids) reaching the cycle
  std::vector<int> cycle;           ///< the repeating choice sequence
  std::int64_t states = 0;
};

/// Searches for an infinite non-deciding schedule of the restricted
/// algorithm `prog` (every participant runs it, seeded with inputs[i]).
LassoResult find_nontermination(const SimProgramPtr& prog, const ValueVec& inputs,
                                const LassoConfig& cfg);

/// Signature of one searcher configuration. Exposed for tests, which pin the
/// property that the memory fold is COMMUTATIVE in the register cells: RegId
/// order is process-global interning order, so folding cells in map order
/// with a position-dependent chain would make signatures (and therefore
/// dedup/cycle detection) depend on which registers other code interned
/// first. Cells are folded by canonical-name hash, order-independently,
/// exactly like RegisterFile::content_hash.
std::uint64_t lasso_config_sig(const std::vector<Value>& state, const std::vector<bool>& decided,
                               const std::vector<bool>& halted,
                               const std::map<RegId, Value>& mem);

}  // namespace efd
