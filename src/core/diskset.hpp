// Tiered out-of-core signature dedup store (DESIGN.md 4f).
//
// The exploration dedup set used to be the RAM ceiling of every hierarchy
// sweep: 10⁸–10⁹ visited signatures at 8 bytes each (plus hash-table slack)
// exhaust memory long before the schedule tree is covered, so E9/E14-family
// experiments could only report "N+" lower bounds. This store keeps the hot
// dedup traffic in memory and pushes the long tail to disk:
//
//   tier 0  per-thread recent-signature cache — a direct-mapped, completely
//           unsynchronized array of signatures this thread recently proved
//           present. A hit answers "duplicate" with no lock. Only
//           definitely-inserted signatures enter the cache, so a hit can
//           never lose a state.
//   tier 1  the mutex-striped ShardedSigSet (core/workpool.hpp) — the
//           authoritative in-memory set, now with a per-shard byte budget.
//   tier 2  DiskTier — per shard, a bloom prefilter in front of mmap'd
//           sorted runs. When a shard crosses its budget it is drained,
//           sorted, written to a run file and dropped from RAM; runs are
//           merged (and the bloom rebuilt) whenever a shard accumulates
//           kMergeRuns of them. Because a signature is only inserted into
//           tier 1 after missing tier 2, the runs of one shard are DISJOINT
//           sorted arrays — merging never needs to dedup, and the store's
//           total size is the plain sum of tier sizes.
//
// First-insert-wins is preserved exactly: the entire probe (mem table →
// bloom → runs) and the insert happen under the owning shard's mutex, so the
// clean-sweep state counts remain thread-count-invariant with the disk tier
// active (PR 2's soundness argument is untouched). With the disk tier
// disabled (EFD_DEDUP_TIERS=mem) behavior and counters are byte-identical
// to the flat in-memory store; with a byte budget but no disk tier the
// store latches mem_exhausted() and the sweep reports a lower bound.
//
// Run files are unlinked immediately after mmap, so a crash can never leak
// spill files; the per-store spill directory (created lazily under
// EFD_DEDUP_DIR / $TMPDIR / /tmp) is removed on destruction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/workpool.hpp"

namespace efd {

/// Configuration of one dedup store. Default-constructed = plain in-memory
/// (exactly the pre-tiered behavior); from_env() reads:
///   EFD_DEDUP_TIERS   "mem" (default) | "tiered" (alias "disk")
///   EFD_DEDUP_MEM_MB  in-memory byte budget in MiB (0 / unset = unlimited)
///   EFD_DEDUP_DIR     spill directory root (default $TMPDIR, then /tmp)
struct DedupConfig {
  bool disk_tier = false;            ///< spill overflowing shards to disk
  std::size_t mem_budget_bytes = 0;  ///< total in-memory cap; 0 = unlimited
  std::string spill_dir;             ///< root for run files; "" = env default
  int recent_bits = 12;              ///< tier-0 cache has 2^bits slots; 0 = off

  [[nodiscard]] static DedupConfig from_env();

  /// True when the store degenerates to the plain flat/sharded in-memory
  /// set (no budget, no disk): explorers then keep their zero-overhead
  /// legacy containers.
  [[nodiscard]] bool plain() const noexcept {
    return !disk_tier && mem_budget_bytes == 0;
  }
};

/// Per-tier traffic of one store (all counters monotone; snapshot via
/// TieredSigSet::tier_stats). Deterministic only for single-threaded sweeps:
/// which tier answers a duplicate depends on thread interleaving.
struct TierStats {
  std::int64_t recent_hits = 0;   ///< duplicates answered by the tier-0 cache
  std::int64_t mem_hits = 0;      ///< duplicates found in the in-memory shard
  std::int64_t cold_probes = 0;   ///< in-memory misses that consulted tier 2
  std::int64_t bloom_skips = 0;   ///< cold probes settled by the bloom alone
  std::int64_t cold_hits = 0;     ///< duplicates found in an mmap'd run
  std::int64_t spills = 0;        ///< shard drains to disk
  std::int64_t spilled_sigs = 0;  ///< signatures moved to disk in total
  std::int64_t spill_bytes = 0;   ///< bytes written to run files in total
  std::int64_t merges = 0;        ///< per-shard run merges
};

/// Tier 2: per-shard bloom prefilter + mmap'd disjoint sorted runs.
/// All per-shard calls arrive under that shard's ShardedSigSet mutex.
class DiskTier final : public ShardedSigSet::ColdTier {
 public:
  /// `dir_root`: where the (lazily created, mkdtemp-named) spill directory
  /// goes; resolved via DedupConfig rules when empty.
  explicit DiskTier(std::string dir_root);
  ~DiskTier() override;
  DiskTier(const DiskTier&) = delete;
  DiskTier& operator=(const DiskTier&) = delete;

  bool contains(std::size_t shard, std::uint64_t sig) override;
  void spill(std::size_t shard, FlatSigSet& set) override;

  [[nodiscard]] std::int64_t cold_probes() const noexcept { return cold_probes_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t bloom_skips() const noexcept { return bloom_skips_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t cold_hits() const noexcept { return cold_hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t spills() const noexcept { return spills_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t spilled_sigs() const noexcept { return spilled_sigs_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t spill_bytes() const noexcept { return spill_bytes_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t merges() const noexcept { return merges_.load(std::memory_order_relaxed); }
  /// The mkdtemp'd spill directory ("" until the first spill creates it).
  [[nodiscard]] std::string dir() const;

  /// Runs per shard before a merge compacts them into one.
  static constexpr std::size_t kMergeRuns = 8;

 private:
  struct Bloom {
    std::vector<std::uint64_t> words;  ///< power-of-two sized bit array
    void reset(std::size_t expected_keys);
    void add(std::uint64_t sig) noexcept;
    [[nodiscard]] bool maybe(std::uint64_t sig) const noexcept;
  };
  struct Run {
    void* map = nullptr;
    std::size_t bytes = 0;
    const std::uint64_t* data = nullptr;
    std::size_t count = 0;
  };
  struct Shard {
    Bloom bloom;
    std::vector<Run> runs;
    std::size_t spilled = 0;              ///< signatures across all runs
    std::vector<std::uint64_t> scratch;   ///< drain/merge buffer (reused)
  };

  void ensure_dir();
  Run write_run(const std::vector<std::uint64_t>& sigs, std::size_t shard);
  static void drop_run(Run& r) noexcept;
  void merge_shard(Shard& s, std::size_t shard_idx);

  std::string dir_root_;
  mutable std::mutex dir_mu_;  ///< guards lazy creation of dir_ across shards
  std::string dir_;
  std::atomic<std::uint64_t> run_seq_{0};
  std::vector<Shard> shards_;

  std::atomic<std::int64_t> cold_probes_{0};
  std::atomic<std::int64_t> bloom_skips_{0};
  std::atomic<std::int64_t> cold_hits_{0};
  std::atomic<std::int64_t> spills_{0};
  std::atomic<std::int64_t> spilled_sigs_{0};
  std::atomic<std::int64_t> spill_bytes_{0};
  std::atomic<std::int64_t> merges_{0};
};

/// The full tiered store: tier-0 per-thread cache in front of the budgeted
/// ShardedSigSet, which overflows into a DiskTier when configured. insert()
/// is first-insert-wins and thread-safe; semantics (which inserts report
/// fresh) are IDENTICAL to a flat in-memory set on every workload — the
/// tiers only change where duplicates are detected and where memory lives.
class TieredSigSet {
 public:
  explicit TieredSigSet(const DedupConfig& cfg);

  /// True iff `sig` was never inserted before (across all tiers).
  bool insert(std::uint64_t sig);

  /// Unique signatures ever inserted (atomic; never torn).
  [[nodiscard]] std::size_t size() const noexcept { return mem_.size(); }

  /// True once the in-memory budget was exceeded with no disk tier to
  /// spill into: the sweep's dedup coverage is no longer exhaustive.
  [[nodiscard]] bool mem_exhausted() const noexcept { return mem_.mem_exhausted(); }

  [[nodiscard]] TierStats tier_stats() const;
  [[nodiscard]] const DedupConfig& config() const noexcept { return cfg_; }
  /// Current spill directory ("" when the disk tier is off or never spilled).
  [[nodiscard]] std::string spill_dir() const { return disk_ ? disk_->dir() : std::string(); }

 private:
  DedupConfig cfg_;
  std::unique_ptr<DiskTier> disk_;  ///< null when the disk tier is off
  ShardedSigSet mem_;
  std::uint64_t id_;  ///< nonce binding tier-0 TLS caches to this store
  std::atomic<std::int64_t> recent_hits_{0};
  /// Duplicates reported by the locked path (tier 1 or tier 2); tier_stats
  /// derives mem_hits as dup_returns - cold_hits.
  std::atomic<std::int64_t> dup_returns_{0};
};

}  // namespace efd
