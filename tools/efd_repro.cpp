// efd_repro: record / replay / shrink `efd-tape-v1` schedule tapes.
//
//   efd_repro list
//   efd_repro record <scenario> [--seed N] [-o out.tape]
//   efd_repro print  <tape>
//   efd_repro replay <tape>
//   efd_repro shrink <tape> [-o out.tape] [--max-rounds N]
//
// `record` runs a scenario's native recording (its own scheduler, detector
// and fault plan) and writes a self-contained tape. `replay` rebuilds the
// scenario's world around the tape's environment, replays the schedule with
// its crash points, and checks both expectations (trace hash, predicate
// outcome); exit status 0 iff everything matches. `shrink` ddmin-minimizes a
// tape while its predicate outcome is preserved, then RE-STAMPS expect_hash
// by replaying the minimized tape once (the recorded hash certified the
// original schedule only).
//
// Exit codes (stable; scripted triage relies on them):
//   0  success / replay matched expectations
//   1  replay ran but an expectation failed (hash or predicate mismatch)
//   2  usage error
//   3  malformed or truncated tape (TapeParseError; line-numbered diagnostic)
//   4  tape file could not be read or written (TapeIoError)
//   5  tape names an unknown or missing scenario
//   6  any other error
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/repro_scenarios.hpp"
#include "core/shrink.hpp"
#include "sim/replay.hpp"
#include "sim/stats.hpp"

namespace {

using namespace efd;

int usage() {
  std::fprintf(stderr,
               "usage: efd_repro list\n"
               "       efd_repro record <scenario> [--seed N] [-o out.tape]\n"
               "       efd_repro print  <tape>\n"
               "       efd_repro replay <tape>\n"
               "       efd_repro shrink <tape> [-o out.tape] [--max-rounds N]\n");
  return 2;
}

int cmd_list() {
  for (const auto& sc : scenarios()) {
    std::printf("%-26s %s\n", sc.name.c_str(), sc.summary.c_str());
  }
  return 0;
}

/// Exit code 5: the tape parsed fine but cannot be bound to process bodies.
class UnknownScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

const Scenario& required_scenario(const ScheduleTape& tape) {
  if (tape.scenario.empty()) {
    throw UnknownScenarioError("tape names no scenario; cannot rebuild its world");
  }
  const Scenario* sc = find_scenario(tape.scenario);
  if (!sc) throw UnknownScenarioError("unknown scenario '" + tape.scenario + "'");
  return *sc;
}

void print_summary(const ScheduleTape& t) {
  std::printf("format    %s\n", ScheduleTape::kFormat);
  std::printf("scenario  %s\n", t.scenario.empty() ? "(none)" : t.scenario.c_str());
  if (!t.plan.empty()) std::printf("plan      %s\n", t.plan.c_str());
  if (!t.finding.empty()) std::printf("finding   %s\n", t.finding.c_str());
  if (!t.substrate.empty()) std::printf("substrate %s\n", t.substrate.c_str());
  std::printf("s         %d\n", t.num_s);
  int base_crashes = 0;
  for (const auto& c : t.base_crash) {
    if (c) ++base_crashes;
  }
  std::printf("pattern   %d base crash(es)\n", base_crashes);
  std::printf("injected  %zu crash point(s)\n", t.crashes.size());
  for (const auto& c : t.crashes) {
    std::printf("          step %" PRId64 " -> q%d\n", c.step_index, c.s_index + 1);
  }
  if (!t.linkfaults.empty()) {
    std::printf("linkfaults %zu charge(s)\n", t.linkfaults.size());
    for (const auto& p : t.linkfaults) {
      std::printf("          step %" PRId64 " %s %s x%d\n", p.step_index,
                  link_fault_token(p.kind), p.link.c_str(), p.amount);
    }
  }
  std::printf("fd        %zu delta(s)\n", t.fd.size());
  std::printf("steps     %zu\n", t.steps.size());
  if (t.expect_hash) std::printf("hash      %016" PRIx64 "\n", *t.expect_hash);
  if (t.expect_violated) std::printf("expect    %s\n", *t.expect_violated ? "violated" : "ok");
}

int cmd_record(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string name = argv[0];
  std::uint64_t seed = 1;
  std::string out = name + ".tape";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out = argv[++i];
    } else {
      return usage();
    }
  }
  const Scenario* sc = find_scenario(name);
  if (!sc) {
    std::fprintf(stderr, "unknown scenario '%s' (try: efd_repro list)\n", name.c_str());
    return 2;
  }
  const ScheduleTape tape = sc->record(seed);
  save_tape(tape, out);
  std::printf("recorded %s (seed %" PRIu64 ") -> %s\n", name.c_str(), seed, out.c_str());
  print_summary(tape);
  return 0;
}

int cmd_print(int argc, char** argv) {
  if (argc != 1) return usage();
  const ScheduleTape tape = load_tape(argv[0]);
  print_summary(tape);
  // Best-effort step rendering: when the tape's scenario is registered,
  // replay it and print the trace — send/recv/deliver and register steps
  // alike render through StepRecord::to_string (sim/trace.cpp), so MP tapes
  // print legibly. Unknown or unbound scenarios keep the summary-only
  // behavior (and the malformed-tape exit codes above are unaffected: the
  // tape already parsed by the time we get here).
  if (const Scenario* sc = find_scenario(tape.scenario)) {
    World w = sc->make_world(tape.pattern(), tape.history());
    replay_tape(w, tape);
    constexpr std::size_t kPrintLimit = 60;
    std::printf("--- steps (first %zu) ---\n%s", kPrintLimit,
                format_trace(w.trace(), kPrintLimit).c_str());
    if (!tape.linkfaults.empty()) {
      // What the re-charged fabric actually did to deliveries this replay.
      const LinkFaultCounters fc = w.substrate().link_fault_counters();
      std::printf("--- link-fault deliveries ---\n");
      std::printf("dropped %" PRId64 "  duplicated %" PRId64 "  delayed %" PRId64
                  "  reordered %" PRId64 "  held_severed %" PRId64 "  lost_sends %" PRId64 "\n",
                  fc.dropped, fc.duplicated, fc.delayed, fc.reordered, fc.held_severed,
                  fc.lost_sends);
    }
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  if (argc != 1) return usage();
  const ScheduleTape tape = load_tape(argv[0]);
  const Scenario& sc = required_scenario(tape);
  const ScenarioReplayOutcome out = replay_in_scenario(sc, tape);
  std::printf("replayed  %zu-step tape (%" PRId64 " steps driven)\n", tape.steps.size(),
              out.replay.drive.steps);
  std::printf("hash      %016" PRIx64 " %s\n", out.replay.hash,
              tape.expect_hash ? (out.replay.hash_match ? "(match)" : "(MISMATCH)")
                               : "(unchecked)");
  std::printf("predicate %s%s\n", out.violated ? "violated" : "ok",
              tape.expect_violated
                  ? (*tape.expect_violated == out.violated ? " (as expected)" : " (UNEXPECTED)")
                  : "");
  // Tapes kept for a liveness finding replay "predicate ok" by design — the
  // finding line is what tells triage this was a wait-freedom violation, not
  // a mislabeled clean run.
  if (!tape.finding.empty()) std::printf("finding   %s\n", tape.finding.c_str());
  if (out.stats.injected_crashes > 0) {
    std::printf("faults    %" PRId64 " crash point(s) applied\n", out.stats.injected_crashes);
  }
  if (!tape.linkfaults.empty()) {
    std::printf("linkfaults %zu charge(s) re-applied\n", tape.linkfaults.size());
  }
  return out.matches(tape) ? 0 : 1;
}

int cmd_shrink(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string in = argv[0];
  std::string out = in + ".min";
  ShrinkOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--max-rounds") && i + 1 < argc) {
      opts.max_rounds = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }
  const ScheduleTape tape = load_tape(in);
  const Scenario& sc = required_scenario(tape);
  // "Failing" = the predicate outcome the tape itself exhibits (stamped at
  // record time, else observed by one replay now): a violated tape shrinks
  // while it keeps violating, an ok tape while it stays ok.
  const bool anchor =
      tape.expect_violated ? *tape.expect_violated : replay_in_scenario(sc, tape).violated;

  ShrinkStats stats;
  ScheduleTape min = shrink_tape(tape, scenario_predicate(sc, anchor), opts, &stats);

  // Re-stamp expectations from the minimized tape's own replay.
  World w = sc.make_world(min.pattern(), min.history());
  min.expect_hash = replay_tape(w, min).hash;
  min.expect_violated = anchor;
  save_tape(min, out);

  std::printf("shrunk    %zu -> %zu steps, %zu -> %zu crash point(s)\n", tape.steps.size(),
              min.steps.size(), tape.crashes.size(), min.crashes.size());
  if (!tape.linkfaults.empty() || !min.linkfaults.empty()) {
    std::printf("          %zu -> %zu link-fault charge(s)\n", tape.linkfaults.size(),
                min.linkfaults.size());
  }
  std::printf("          %" PRId64 " candidate replays, %d round(s)%s\n", stats.candidates,
              stats.rounds, stats.reached_fixpoint ? ", fixpoint" : "");
  std::printf("wrote     %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "record") return cmd_record(argc - 2, argv + 2);
    if (cmd == "print") return cmd_print(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "shrink") return cmd_shrink(argc - 2, argv + 2);
  } catch (const TapeParseError& e) {
    std::fprintf(stderr, "efd_repro: malformed tape: %s\n", e.what());
    return 3;
  } catch (const TapeIoError& e) {
    std::fprintf(stderr, "efd_repro: %s\n", e.what());
    return 4;
  } catch (const UnknownScenarioError& e) {
    std::fprintf(stderr, "efd_repro: %s\n", e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "efd_repro: %s\n", e.what());
    return 6;
  }
  return usage();
}
