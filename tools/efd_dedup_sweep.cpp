// efd_dedup_sweep: one memory-governed exploration sweep, for sizing and
// certifying large (10⁸–10⁹ state) hierarchy levels through the tiered
// dedup store (core/diskset.hpp).
//
//   efd_dedup_sweep [--n N] [--set-k K] [--level L] [--max-states N]
//                   [--max-depth N] [--threads N]
//                   [--tiers mem|tiered] [--mem-mb N] [--spill-dir DIR]
//                   [--out FILE]
//
// Runs the generic 1-concurrent solver for (N, K)-set-agreement under a
// level-L concurrency window and reports whether the level was FULLY
// certified clean, only lower-bounded (the budget or the memory cap ran
// out first — the paper-facing "L+" rows), or refuted by a violating run.
// The dedup store defaults to the environment (EFD_DEDUP_TIERS /
// EFD_DEDUP_MEM_MB / EFD_DEDUP_DIR) and each flag overrides one knob, so
// the same invocation can be flipped between the RAM-capped mem-only
// configuration and the out-of-core one to compare capacity.
//
// --out writes an efd-dedup-sweep-v1 JSON document: the resolved config,
// the semantic counters (identical across store shapes by design), and the
// per-tier traffic. Exit codes: 0 level certified clean; 3 exhausted
// (lower bound only); 1 violating run found; 2 usage error; 6 other error.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>

#include "algo/one_concurrent.hpp"
#include "core/solvability.hpp"
#include "core/telemetry.hpp"
#include "tasks/set_agreement.hpp"

namespace {

using namespace efd;

int usage() {
  std::fprintf(stderr,
               "usage: efd_dedup_sweep [--n N] [--set-k K] [--level L]\n"
               "                       [--max-states N] [--max-depth N] [--threads N]\n"
               "                       [--tiers mem|tiered] [--mem-mb N] [--spill-dir DIR]\n"
               "                       [--out FILE]\n");
  return 2;
}

telemetry::Json sweep_json(const ExploreOutcome& o, const ExploreConfig& cfg, int n, int set_k,
                           const std::string& verdict) {
  using telemetry::Json;
  Json doc = Json::object();
  doc["schema"] = "efd-dedup-sweep-v1";
  doc["git"] = telemetry::git_describe();
  Json config = Json::object();
  config["task"] = "(" + std::to_string(n) + "," + std::to_string(set_k) + ")-set-agreement";
  config["n"] = n;
  config["set_k"] = set_k;
  config["level"] = cfg.k;
  config["max_states"] = cfg.max_states;
  config["max_depth"] = cfg.max_depth;
  config["threads"] = cfg.threads;
  config["tiers"] = cfg.dedup_store.disk_tier ? "tiered" : "mem";
  config["mem_budget_bytes"] = static_cast<std::int64_t>(cfg.dedup_store.mem_budget_bytes);
  config["spill_dir"] = cfg.dedup_store.spill_dir;
  doc["config"] = std::move(config);

  doc["verdict"] = verdict;
  Json sem = Json::object();  // identical across store shapes by design
  sem["states"] = o.states;
  sem["terminal_runs"] = o.terminal_runs;
  sem["dedup_queries"] = o.stats.dedup_queries;
  sem["dedup_misses"] = o.stats.dedup_misses;
  sem["dedup_hits"] = o.stats.dedup_hits;
  doc["semantic"] = std::move(sem);
  Json run = Json::object();
  run["ok"] = o.ok;
  run["budget_exhausted"] = o.budget_exhausted;
  run["mem_exhausted"] = o.mem_exhausted;
  run["violation"] = o.violation;
  run["elapsed_s"] = o.stats.elapsed_s;
  run["states_per_s"] = o.stats.states_per_s;
  doc["run"] = std::move(run);
  Json tiers = Json::object();
  tiers["recent_hits"] = o.stats.dedup_recent_hits;
  tiers["mem_hits"] = o.stats.dedup_mem_hits;
  tiers["cold_probes"] = o.stats.dedup_cold_probes;
  tiers["bloom_skips"] = o.stats.dedup_bloom_skips;
  tiers["cold_hits"] = o.stats.dedup_cold_hits;
  tiers["spills"] = o.stats.dedup_spills;
  tiers["spilled_sigs"] = o.stats.dedup_spilled_sigs;
  tiers["spill_bytes"] = o.stats.dedup_spill_bytes;
  tiers["merges"] = o.stats.dedup_merges;
  doc["tiers"] = std::move(tiers);
  return doc;
}

int run(int argc, char** argv) {
  int n = 5;
  int set_k = 2;
  ExploreConfig cfg;  // dedup_store defaults from the environment
  cfg.k = 2;
  cfg.max_states = 400000;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const auto int_arg = [&](long long lo) -> long long {
      if (i + 1 >= argc) { std::exit(usage()); }
      char* end = nullptr;
      const long long v = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < lo) std::exit(usage());
      return v;
    };
    if (!std::strcmp(argv[i], "--n")) {
      n = static_cast<int>(int_arg(1));
    } else if (!std::strcmp(argv[i], "--set-k")) {
      set_k = static_cast<int>(int_arg(1));
    } else if (!std::strcmp(argv[i], "--level")) {
      cfg.k = static_cast<int>(int_arg(1));
    } else if (!std::strcmp(argv[i], "--max-states")) {
      cfg.max_states = int_arg(1);
    } else if (!std::strcmp(argv[i], "--max-depth")) {
      cfg.max_depth = static_cast<int>(int_arg(1));
    } else if (!std::strcmp(argv[i], "--threads")) {
      cfg.threads = static_cast<int>(int_arg(1));
    } else if (!std::strcmp(argv[i], "--tiers") && i + 1 < argc) {
      const std::string t = argv[++i];
      if (t == "mem") {
        cfg.dedup_store.disk_tier = false;
      } else if (t == "tiered" || t == "disk") {
        cfg.dedup_store.disk_tier = true;
      } else {
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--mem-mb")) {
      cfg.dedup_store.mem_budget_bytes =
          static_cast<std::size_t>(int_arg(0)) * 1024 * 1024;
    } else if (!std::strcmp(argv[i], "--spill-dir") && i + 1 < argc) {
      cfg.dedup_store.spill_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (set_k >= n || cfg.k > n) return usage();

  const TaskPtr task = std::make_shared<SetAgreementTask>(n, set_k);
  ValueVec in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = Value(i);
  const auto body = [task](int, Value input) {
    return make_one_concurrent(task, input, "dedup_sweep");
  };
  cfg.arrival.clear();
  for (int i = 0; i < n; ++i) cfg.arrival.push_back(i);

  const ExploreOutcome o = explore_k_concurrent(task, body, in, cfg);
  const std::string verdict = !o.ok              ? "violation"
                              : o.budget_exhausted ? "lower_bound"
                                                   : "clean";
  std::printf("(%d,%d)-set-agreement level %d [%s%s]: %s — %" PRId64 "%s states, %" PRId64
              " terminal runs, %" PRId64 " unique sigs (%.0f states/s)\n",
              n, set_k, cfg.k, cfg.dedup_store.disk_tier ? "tiered" : "mem",
              cfg.dedup_store.mem_budget_bytes != 0 ? "+cap" : "", verdict.c_str(), o.states,
              o.budget_exhausted ? "+" : "", o.terminal_runs, o.stats.dedup_misses,
              o.stats.states_per_s);
  if (o.mem_exhausted) {
    std::printf("  memory cap hit with no disk tier: the level is a lower bound only "
                "(rerun with --tiers tiered to certify)\n");
  }
  if (!o.ok) std::printf("  violation: %s\n", o.violation.c_str());
  if (o.stats.dedup_spills > 0) {
    std::printf("  disk tier: %" PRId64 " spills, %" PRId64 " sigs, %" PRId64 " bytes, %" PRId64
                " merges\n",
                o.stats.dedup_spills, o.stats.dedup_spilled_sigs, o.stats.dedup_spill_bytes,
                o.stats.dedup_merges);
  }

  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f) {
      std::fprintf(stderr, "efd_dedup_sweep: cannot write %s\n", out_path.c_str());
      return 6;
    }
    f << sweep_json(o, cfg, n, set_k, verdict).dump(2) << "\n";
  }
  if (!o.ok) return 1;
  return o.budget_exhausted ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "efd_dedup_sweep: %s\n", e.what());
    return 6;
  }
}
