#!/bin/sh
# Cross-backend substrate smoke: the full MP tape workflow through the
# efd_repro CLI, exactly what a developer does with a message-passing fuzz
# counterexample.
#
#  1. record each MP scenario (clean run, partition, crash-mid-broadcast) —
#     every tape must carry the `substrate msg` provenance line;
#  2. replay each bit-identically (exit 0: hash + predicate match);
#  3. print the violating tape — the renderer must show send/deliver/recv
#     step kinds, not refuse non-register ops;
#  4. ddmin the violating tape to <= 25% of the recorded schedule and replay
#     the minimum as still-violating.
#
# Sweeps seeds 1 and 7 so the record path is exercised beyond a single
# schedule. Sized to stay viable under EFD_SANITIZE=address/thread builds
# (largest tape is 700 steps).
#
# Usage: substrate_smoke.sh EFD_REPRO_BINARY
set -eu

bin=$1

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for seed in 1 7; do
    for sc in mp_floodmin_clean mp_floodmin_partition mp_floodmin_crash_bcast; do
        tape="$tmpdir/$sc.$seed.tape"
        "$bin" record "$sc" --seed "$seed" -o "$tape" > /dev/null
        grep -q '^substrate msg$' "$tape" || {
            echo "substrate_smoke: $sc (seed $seed) lacks 'substrate msg' provenance" >&2
            exit 1
        }
        "$bin" replay "$tape" > "$tmpdir/replay.txt" || {
            echo "substrate_smoke: $sc (seed $seed) did not replay bit-identically" >&2
            cat "$tmpdir/replay.txt" >&2
            exit 1
        }
    done
done

# The crash-mid-broadcast recording is the violating one (decisions split).
bad="$tmpdir/mp_floodmin_crash_bcast.7.tape"
grep -q '^expect violated$' "$bad" || {
    echo "substrate_smoke: crash_bcast recording did not violate (seed drift?)" >&2
    exit 1
}

# print must render the message-passing step kinds.
"$bin" print "$bad" > "$tmpdir/print.txt"
for kind in 'send' 'deliver' 'recv'; do
    grep -q " $kind " "$tmpdir/print.txt" || {
        echo "substrate_smoke: print rendered no '$kind' step" >&2
        cat "$tmpdir/print.txt" >&2
        exit 1
    }
done

"$bin" shrink "$bad" -o "$tmpdir/min.tape" > "$tmpdir/shrink.txt"
cat "$tmpdir/shrink.txt"
"$bin" replay "$tmpdir/min.tape"

orig=$(sed -n 's/^steps \([0-9][0-9]*\)$/\1/p' "$bad")
min=$(sed -n 's/^steps \([0-9][0-9]*\)$/\1/p' "$tmpdir/min.tape")
if [ -z "$orig" ] || [ -z "$min" ]; then
    echo "substrate_smoke: could not read step counts" >&2
    exit 1
fi
if [ "$min" -lt 1 ]; then
    echo "substrate_smoke: empty minimized schedule" >&2
    exit 1
fi
if [ $((min * 4)) -gt "$orig" ]; then
    echo "substrate_smoke: shrink too weak: $orig -> $min steps (want <= 25%)" >&2
    exit 1
fi

echo "substrate_smoke: ok (crash_bcast $orig -> $min steps)"
