#!/usr/bin/env sh
# Campaign smoke check (ctest -L campaign): a small fixed-seed sweep over all
# campaign targets must end with every verdict met — clean targets clean,
# seeded-buggy targets caught with a verified shrunk tape — and must emit a
# well-formed efd-campaign-v1 document. Small N keeps this fast enough to run
# under EFD_SANITIZE=address/thread builds, where the full sweep would not be.
#
# usage: campaign_smoke.sh <efd_campaign-binary> [workdir]
set -eu

campaign="$1"
work="${2:-$(mktemp -d)}"
mkdir -p "$work"
out="$work/campaign_smoke.json"

# Exit 0 is the verdict line: nonzero means a clean target violated or a
# seeded bug escaped. The torn-commit target (tw) is excluded: its bug fires
# in only ~4% of plans, so a seeded 8-plan sweep cannot reliably catch it —
# it is covered by test_campaign's checker tests and the full E15 sweep.
"$campaign" run --seed 42 --plans 8 --save-dir "$work/pending" --out "$out" \
  --target cons --target ksa --target ren --target p1c \
  --target synth --target bcf --target brn

grep -q '"schema": "efd-campaign-v1"' "$out" || {
  echo "FAIL: $out is not an efd-campaign-v1 document" >&2
  exit 1
}
grep -q '"target": "cons"' "$out" || {
  echo "FAIL: $out is missing the consensus target" >&2
  exit 1
}

# Violation tapes of the seeded-buggy targets must exist and carry the plan
# provenance line.
found=0
for tape in "$work"/pending/*.tape; do
  [ -e "$tape" ] || continue
  found=1
  head -1 "$tape" | grep -q '^efd-tape-v1$' || {
    echo "FAIL: $tape is not an efd-tape-v1 artifact" >&2
    exit 1
  }
done
if [ "$found" = "0" ]; then
  echo "FAIL: the seeded-buggy targets produced no violation tapes" >&2
  exit 1
fi
grep -lq '^plan plan-v1' "$work"/pending/*.tape || {
  echo "FAIL: no violation tape carries a plan provenance line" >&2
  exit 1
}
grep -lq '^finding ' "$work"/pending/*.tape || {
  echo "FAIL: no violation tape carries a finding verdict line" >&2
  exit 1
}

# An unwritable save-dir must fail up front with the distinct IO exit code
# (7), not silently drop tapes plan by plan. A plain file blocks the
# create_directories call on every platform, root or not.
touch "$work/not_a_dir"
rc=0
"$campaign" run --seed 42 --plans 1 --target cons \
  --save-dir "$work/not_a_dir/pending" --out "$work/unused.json" 2>/dev/null || rc=$?
if [ "$rc" != "7" ]; then
  echo "FAIL: malformed save-dir exited $rc, want 7" >&2
  exit 1
fi

echo "campaign smoke ok: $out"
