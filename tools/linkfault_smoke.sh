#!/bin/sh
# Lossy-link smoke: the E20 tape workflow through the efd_repro CLI.
#
#  1. record the E20 scenario pair under the SAME cross-link drop storm —
#     the timeout protocol's tape must stamp `expect violated`, the
#     retransmission-hardened one `expect ok`, and both must carry the
#     `linkfaults` and `substrate msg` provenance lines plus the plan-v1
#     `plan` line naming the storm;
#  2. print the violating tape — the renderer must show the link-fault
#     charge rows and the consumed-fault counter block;
#  3. replay every tape bit-identically (exit 0: hash + predicate match),
#     which re-charges the fabric from the `linkfaults` line;
#  4. ddmin the violation to <= 25% of the recorded schedule (the E20 gate)
#     and replay the minimum as still-violating.
#
# Usage: linkfault_smoke.sh EFD_REPRO_BINARY
set -eu

bin=$1

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

for seed in 1 7; do
    for sc in mp_floodmin_lossy_raw mp_floodmin_lossy_rt; do
        tape="$tmpdir/$sc.$seed.tape"
        "$bin" record "$sc" --seed "$seed" -o "$tape" > /dev/null
        for line in '^linkfaults drop ' '^substrate msg$' '^plan plan-v1; link drop '; do
            grep -q "$line" "$tape" || {
                echo "linkfault_smoke: $sc (seed $seed) lacks provenance '$line'" >&2
                exit 1
            }
        done
        "$bin" replay "$tape" > "$tmpdir/replay.txt" || {
            echo "linkfault_smoke: $sc (seed $seed) did not replay bit-identically" >&2
            cat "$tmpdir/replay.txt" >&2
            exit 1
        }
        grep -q 'charge(s) re-applied' "$tmpdir/replay.txt" || {
            echo "linkfault_smoke: $sc (seed $seed) replay did not re-charge the fabric" >&2
            exit 1
        }
    done
    grep -q '^expect violated$' "$tmpdir/mp_floodmin_lossy_raw.$seed.tape" || {
        echo "linkfault_smoke: raw tape (seed $seed) did not violate (seed drift?)" >&2
        exit 1
    }
    grep -q '^expect ok$' "$tmpdir/mp_floodmin_lossy_rt.$seed.tape" || {
        echo "linkfault_smoke: hardened tape (seed $seed) was not clean under the storm" >&2
        exit 1
    }
done

# print must render the charge rows and the consumed-fault counters.
bad="$tmpdir/mp_floodmin_lossy_raw.1.tape"
"$bin" print "$bad" > "$tmpdir/print.txt"
for want in 'linkfaults' 'link-fault deliveries' 'dropped'; do
    grep -q "$want" "$tmpdir/print.txt" || {
        echo "linkfault_smoke: print rendered no '$want'" >&2
        cat "$tmpdir/print.txt" >&2
        exit 1
    }
done

"$bin" shrink "$bad" -o "$tmpdir/min.tape" > "$tmpdir/shrink.txt"
cat "$tmpdir/shrink.txt"
"$bin" replay "$tmpdir/min.tape"

orig=$(sed -n 's/^steps \([0-9][0-9]*\)$/\1/p' "$bad")
min=$(sed -n 's/^steps \([0-9][0-9]*\)$/\1/p' "$tmpdir/min.tape")
if [ -z "$orig" ] || [ -z "$min" ]; then
    echo "linkfault_smoke: could not read step counts" >&2
    exit 1
fi
if [ "$min" -lt 1 ]; then
    echo "linkfault_smoke: empty minimized schedule" >&2
    exit 1
fi
if [ $((min * 4)) -gt "$orig" ]; then
    echo "linkfault_smoke: shrink too weak: $orig -> $min steps (want <= 25%)" >&2
    exit 1
fi

echo "linkfault_smoke: ok (lossy_raw $orig -> $min steps)"
