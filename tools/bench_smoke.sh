#!/bin/sh
# Smoke-run one bench binary and validate the JSON it emits.
#
# Usage: bench_smoke.sh BENCH_BINARY EXPERIMENT [BENCHMARK_ARGS...]
#   BENCH_BINARY  path to a bench executable (bench/bench_e<k>_*)
#   EXPERIMENT    the E<n> tag the binary writes (BENCH_E<n>.json)
#
# Runs the binary for a single tiny timing window into a scratch directory
# (EFD_BENCH_JSON_DIR) and schema-checks the resulting file with
# tools/bench_diff.py --validate. Used by the `telemetry`-labeled ctest
# smoke tests (bench/CMakeLists.txt).
set -eu

bin=$1
exp=$2
shift 2

script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

EFD_BENCH_JSON_DIR="$tmpdir" "$bin" --benchmark_min_time=0.001 "$@" > "$tmpdir/stdout.txt"

json="$tmpdir/BENCH_$exp.json"
if [ ! -f "$json" ]; then
    echo "bench_smoke: $bin did not write BENCH_$exp.json" >&2
    exit 1
fi
python3 "$script_dir/bench_diff.py" --validate "$json"
