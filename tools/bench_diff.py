#!/usr/bin/env python3
"""Validate and diff the BENCH_E<n>.json files the bench binaries emit.

Schema (efd-bench-v1), produced by efd::telemetry::BenchEmitter:

    {
      "schema": "efd-bench-v1",
      "experiment": "E14",
      "git": "<git describe --always --dirty>",
      "benchmarks": [
        {"name": "E14_Parallel/4", "iterations": 3,
         "counters": {"states": 188474.0, ...}},
        ...
      ],
      "tables": [
        {"title": "...", "columns": "...", "rows": ["...", ...]},
        ...
      ]
    }

Also validates efd-campaign-v1 documents (tools/efd_campaign --out): a run
header (seed, plans_per_target, monitors) plus one entry per campaign target
with its verdict, plan mix and violation list (schema in EXPERIMENTS.md E15).
--validate dispatches on the document's "schema" field.

Usage:
    bench_diff.py --validate FILE...
        Schema-check each file: exit 1 on the first invalid one.

    bench_diff.py BASELINE_DIR CANDIDATE_DIR [--threshold PCT] [--rate-key SUBSTR]
        Compare every BENCH_*.json present in both directories, counter by
        counter. Counters whose name contains a rate marker ("per_s",
        "per_iter", "/s") are treated as rates: a drop of more than
        --threshold percent (default 10) against the baseline is a
        regression and makes the exit status 1. Counters whose name
        contains "allocs_per" are lower-is-better: an increase beyond
        the threshold (and beyond an absolute epsilon, so 0 -> ~0 noise
        never trips) is a regression. Other counters are reported when
        they differ but never fail the diff (they are workload-shape
        figures, not performance).
"""

import argparse
import json
import os
import sys

SCHEMA = "efd-bench-v1"
CAMPAIGN_SCHEMA = "efd-campaign-v1"
FARM_SCHEMA = "efd-campaign-farm-v1"
# "hit_rate" covers the tiered dedup store's per-tier hit rates: higher is
# better (a drop means duplicates migrated to a slower tier), so they use the
# same drop-beyond-threshold rule as throughput rates. Spill byte/sig counts
# deliberately carry NO marker — they are workload-shape figures, reported
# when they differ but never a failure.
RATE_MARKERS = ("per_s", "per_iter", "/s", "hit_rate")
# Counters where smaller is better (heap traffic): an *increase* beyond the
# threshold is the regression. ALLOC_EPSILON absorbs jitter around zero —
# since the respawn-path fix the sweep hot loop performs no steady-state
# allocations at all, so the bar is a tight 0.002 allocs/step: enough for
# one-off warm-up allocations amortized over a different iteration count,
# far below any real per-state allocation creeping back in.
LOWER_BETTER_MARKERS = ("allocs_per",)
ALLOC_EPSILON = 0.002
# Experiments whose benches carry the allocation probe; --validate requires
# the counter so a silently dropped probe cannot pass the smoke test.
ALLOC_PROBED_EXPERIMENTS = ("E13", "E14")
# Experiments that must exercise the tiered dedup store: --validate requires
# at least one benchmark with the per-tier counters, so silently dropping the
# tiered row (and its spill coverage) cannot pass the smoke test.
TIER_COUNTER_EXPERIMENTS = ("E14",)
TIER_COUNTER_KEYS = ("recent_hit_rate", "mem_hit_rate", "spill_bytes")


def fail(msg):
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate_campaign_doc(path, doc):
    def check(cond, msg):
        if not cond:
            fail(f"{path}: {msg}")

    check(isinstance(doc.get("git"), str) and doc["git"], "missing git describe")
    check(isinstance(doc.get("seed"), int), "seed must be an integer")
    check(isinstance(doc.get("plans_per_target"), int) and doc["plans_per_target"] > 0,
          "plans_per_target must be a positive integer")
    check(isinstance(doc.get("monitors"), bool), "monitors must be a boolean")
    targets = doc.get("targets")
    check(isinstance(targets, list) and targets, "targets must be a non-empty array")
    seen = set()
    for t in targets:
        check(isinstance(t, dict), "target entry is not an object")
        name = t.get("target")
        check(isinstance(name, str) and name, "target without a name")
        check(name not in seen, f"duplicate target {name!r}")
        seen.add(name)
        for key in ("scenario", "algorithm"):
            check(isinstance(t.get(key), str) and t[key], f"{name}: missing {key}")
        for key in ("expect_clean", "verdict_ok"):
            check(isinstance(t.get(key), bool), f"{name}: {key} must be a boolean")
        for key in ("plans", "clean_plans", "violations", "safety_violations",
                    "wait_free_violations", "starvation_observations", "total_steps",
                    "rehearsal_steps", "monitored_steps", "max_own_steps_to_decide"):
            check(isinstance(t.get(key), int) and t[key] >= 0,
                  f"{name}: {key} must be a non-negative integer")
        mix = t.get("plan_mix")
        check(isinstance(mix, dict), f"{name}: plan_mix must be an object")
        for key in ("fd_fault", "storm", "trigger", "burst", "link"):
            check(isinstance(mix.get(key), int) and mix[key] >= 0,
                  f"{name}: plan_mix.{key} must be a non-negative integer")
        viols = t.get("violation_list")
        check(isinstance(viols, list), f"{name}: violation_list must be an array")
        check(len(viols) == t["violations"],
              f"{name}: violation_list length != violations count")
        for v in viols:
            check(isinstance(v, dict), f"{name}: violation entry is not an object")
            check(isinstance(v.get("plan_seed"), int), f"{name}: violation without plan_seed")
            check(isinstance(v.get("plan"), str) and v["plan"].startswith("plan-v1"),
                  f"{name}: violation plan is not a plan-v1 line")
            for key in ("safety", "wait_free", "shrunk_replay_ok"):
                check(isinstance(v.get(key), bool), f"{name}: violation {key} must be a boolean")
            for key in ("tape_steps", "shrunk_steps"):
                check(isinstance(v.get(key), int) and v[key] >= 0,
                      f"{name}: violation {key} must be a non-negative integer")


def load_stream(path):
    """Loads either one JSON document or a JSONL stream (the farm's stdout:
    one soak record per line). Returns a list of documents."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"{path}: {e}")
    try:
        return [json.loads(text)]
    except json.JSONDecodeError:
        pass
    docs = []
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"{path}:{i}: {e}")
    if not docs:
        fail(f"{path}: no JSON documents")
    return docs


def validate_farm_doc(path, doc):
    """One efd-campaign-farm-v1 record: a streaming "soak" interval snapshot
    or the end-of-run "final" document (same shape; EXPERIMENTS.md E18)."""
    def check(cond, msg):
        if not cond:
            fail(f"{path}: {msg}")

    check(isinstance(doc.get("git"), str) and doc["git"], "missing git describe")
    check(doc.get("mode") in ("soak", "final"), "mode must be 'soak' or 'final'")
    check(isinstance(doc.get("seed"), int), "seed must be an integer")
    for key in ("workers", "batch"):
        check(isinstance(doc.get(key), int) and doc[key] > 0,
              f"{key} must be a positive integer")
    for key in ("monitors", "shrink", "mutate", "drained"):
        check(isinstance(doc.get(key), bool), f"{key} must be a boolean")
    for key in ("elapsed_s", "plans_per_s"):
        check(isinstance(doc.get(key), (int, float)) and doc[key] >= 0,
              f"{key} must be a non-negative number")
    for key in ("plans", "clean", "violations", "novel", "duplicates", "shrunk",
                "shrink_replays_ok", "mutated", "external", "coverage_sigs",
                "total_steps", "batches"):
        check(isinstance(doc.get(key), int) and doc[key] >= 0,
              f"{key} must be a non-negative integer")
    check(doc["novel"] + doc["duplicates"] <= doc["violations"],
          "novel + duplicates exceeds violations")
    check(doc["clean"] + doc["violations"] == doc["plans"],
          "clean + violations != plans")
    corpus = doc.get("corpus")
    check(isinstance(corpus, dict), "corpus must be an object")
    check(isinstance(corpus.get("dir"), str), "corpus.dir must be a string")
    for key in ("size", "aliases", "seeded", "quarantined"):
        check(isinstance(corpus.get(key), int) and corpus[key] >= 0,
              f"corpus.{key} must be a non-negative integer")
    targets = doc.get("targets")
    check(isinstance(targets, list) and targets, "targets must be a non-empty array")
    seen = set()
    for t in targets:
        check(isinstance(t, dict), "target entry is not an object")
        name = t.get("target")
        check(isinstance(name, str) and name, "target without a name")
        check(name not in seen, f"duplicate target {name!r}")
        seen.add(name)
        check(isinstance(t.get("expect_clean"), bool),
              f"{name}: expect_clean must be a boolean")
        for key in ("plans", "clean", "safety_violations", "wait_free_violations",
                    "novel", "duplicates", "starvation_observations", "coverage_sigs",
                    "mutated", "external", "total_steps"):
            check(isinstance(t.get(key), int) and t[key] >= 0,
                  f"{name}: {key} must be a non-negative integer")


def validate_doc(path, doc, require_alloc_probe=True):
    def check(cond, msg):
        if not cond:
            fail(f"{path}: {msg}")

    check(isinstance(doc, dict), "top level is not an object")
    if doc.get("schema") == CAMPAIGN_SCHEMA:
        validate_campaign_doc(path, doc)
        return
    if doc.get("schema") == FARM_SCHEMA:
        validate_farm_doc(path, doc)
        return
    check(doc.get("schema") == SCHEMA,
          f"schema is {doc.get('schema')!r}, want {SCHEMA!r}, {CAMPAIGN_SCHEMA!r}"
          f" or {FARM_SCHEMA!r}")
    check(isinstance(doc.get("experiment"), str) and doc["experiment"], "missing experiment name")
    check(isinstance(doc.get("git"), str) and doc["git"], "missing git describe")
    benches = doc.get("benchmarks")
    check(isinstance(benches, list) and benches, "benchmarks must be a non-empty array")
    seen = set()
    for b in benches:
        check(isinstance(b, dict), "benchmark entry is not an object")
        name = b.get("name")
        check(isinstance(name, str) and name, "benchmark without a name")
        check(name not in seen, f"duplicate benchmark name {name!r}")
        seen.add(name)
        check(isinstance(b.get("iterations"), int) and b["iterations"] > 0,
              f"{name}: iterations must be a positive integer")
        counters = b.get("counters")
        check(isinstance(counters, dict) and counters,
              f"{name}: counters must be a non-empty object")
        for k, v in counters.items():
            check(isinstance(v, (int, float)), f"{name}: counter {k!r} is not numeric")
        if require_alloc_probe and doc.get("experiment") in ALLOC_PROBED_EXPERIMENTS:
            check("allocs_per_step" in counters,
                  f"{name}: missing allocs_per_step counter "
                  f"(experiment {doc['experiment']} carries the allocation probe)")
    if require_alloc_probe and doc.get("experiment") in TIER_COUNTER_EXPERIMENTS:
        check(any(all(k in b.get("counters", {}) for k in TIER_COUNTER_KEYS)
                  for b in benches),
              f"no benchmark carries the tiered dedup counters "
              f"{TIER_COUNTER_KEYS} (experiment {doc['experiment']} must "
              f"exercise the tiered store)")
    tables = doc.get("tables")
    check(isinstance(tables, list), "tables must be an array")
    for t in tables:
        check(isinstance(t.get("title"), str) and t["title"], "table without a title")
        rows = t.get("rows")
        check(isinstance(rows, list), "table rows must be an array")
        for r in rows:
            check(isinstance(r, str), "table row is not a string")
    titles = [t["title"] for t in tables]
    check(len(titles) == len(set(titles)), "duplicate table titles")


def is_lower_better(counter_name):
    return any(m in counter_name for m in LOWER_BETTER_MARKERS)


def is_rate(counter_name):
    return not is_lower_better(counter_name) and any(
        m in counter_name for m in RATE_MARKERS)


def diff_dirs(base_dir, cand_dir, threshold):
    base_files = {f for f in os.listdir(base_dir)
                  if f.startswith("BENCH_") and f.endswith(".json")}
    cand_files = {f for f in os.listdir(cand_dir)
                  if f.startswith("BENCH_") and f.endswith(".json")}
    common = sorted(base_files & cand_files)
    if not common:
        fail(f"no BENCH_*.json files common to {base_dir} and {cand_dir}")
    for only, where in ((base_files - cand_files, "baseline"),
                        (cand_files - base_files, "candidate")):
        for f in sorted(only):
            print(f"note: {f} present only in {where}")

    regressions = 0
    for fname in common:
        base = load(os.path.join(base_dir, fname))
        cand = load(os.path.join(cand_dir, fname))
        # Baselines may predate the allocation probe; only --validate (used by
        # tools/bench_smoke.sh on freshly emitted files) insists on it.
        validate_doc(os.path.join(base_dir, fname), base, require_alloc_probe=False)
        validate_doc(os.path.join(cand_dir, fname), cand, require_alloc_probe=False)
        if CAMPAIGN_SCHEMA in (base.get("schema"), cand.get("schema")):
            print(f"note: {fname} is an {CAMPAIGN_SCHEMA} document; not diffable, skipping")
            continue
        base_by_name = {b["name"]: b for b in base["benchmarks"]}
        for b in cand["benchmarks"]:
            ref = base_by_name.get(b["name"])
            if ref is None:
                print(f"note: {fname}: {b['name']} has no baseline")
                continue
            for key, val in sorted(b["counters"].items()):
                if key not in ref["counters"]:
                    continue
                old = ref["counters"][key]
                if old == val:
                    continue
                pct = (val - old) / abs(old) * 100 if old else float("inf")
                tag = f"{fname}: {b['name']} {key}: {old:g} -> {val:g} ({pct:+.1f}%)"
                if is_rate(key) and pct < -threshold:
                    print(f"REGRESSION {tag}")
                    regressions += 1
                elif (is_lower_better(key) and val > old + ALLOC_EPSILON
                      and pct > threshold):
                    print(f"REGRESSION {tag}")
                    regressions += 1
                else:
                    print(f"  {tag}")
    if regressions:
        print(f"bench_diff: {regressions} regression(s) beyond "
              f"{threshold:g}%", file=sys.stderr)
        return 1
    print("bench_diff: no regressions")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--validate", action="store_true",
                    help="schema-check the given files instead of diffing directories")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="rate-drop percentage that counts as a regression (default 10)")
    ap.add_argument("paths", nargs="+",
                    help="files (--validate) or BASELINE_DIR CANDIDATE_DIR")
    args = ap.parse_args()

    if args.validate:
        for path in args.paths:
            docs = load_stream(path)
            for doc in docs:
                validate_doc(path, doc)
            print(f"{path}: OK" + (f" ({len(docs)} records)" if len(docs) > 1 else ""))
        return 0
    if len(args.paths) != 2:
        fail("diff mode takes exactly two directories (or use --validate)")
    return diff_dirs(args.paths[0], args.paths[1], args.threshold)


if __name__ == "__main__":
    sys.exit(main())
