// efd_campaign: seeded adversarial fault campaigns over the paper algorithms.
//
//   efd_campaign list
//   efd_campaign run [--seed N] [--plans N] [--target NAME ...]
//                    [--save-dir DIR] [--out FILE]
//                    [--no-monitors] [--no-shrink]
//
// `run` sweeps N random FaultPlans (crash storms, targeted trigger kills,
// lying/omissive/stuttering advice, starvation bursts) per campaign target —
// the paper algorithms expected to survive everything, plus the seeded-buggy
// variants the campaign must catch. Violations are saved as replayable
// `efd-tape-v1` tapes (default: tests/corpus/pending/), safety findings are
// ddmin-shrunk and double-replay-verified, and the sweep summary is emitted
// as `efd-campaign-v1` JSON (schema in EXPERIMENTS.md E15; bench_diff.py
// --validate accepts it).
//
// Exit codes: 0 every target met its verdict (clean targets clean, buggy
// targets caught with a verified shrunk tape); 1 some verdict failed;
// 2 usage error; 6 any other error.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace {

using namespace efd;

int usage() {
  std::fprintf(stderr,
               "usage: efd_campaign list\n"
               "       efd_campaign run [--seed N] [--plans N] [--target NAME ...]\n"
               "                        [--save-dir DIR] [--out FILE]\n"
               "                        [--no-monitors] [--no-shrink]\n");
  return 2;
}

int cmd_list() {
  for (const auto& t : campaign_targets()) {
    std::printf("%-8s %-26s %s%s\n", t.name.c_str(), t.scenario.c_str(), t.algorithm.c_str(),
                t.expect_clean ? "" : "  [seeded bug]");
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  CampaignOptions opts;
  opts.save_dir = "tests/corpus/pending";
  std::vector<std::string> names;
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (!std::strcmp(argv[i], "--plans") && i + 1 < argc) {
      opts.plans = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--target") && i + 1 < argc) {
      names.emplace_back(argv[++i]);
    } else if (!std::strcmp(argv[i], "--save-dir") && i + 1 < argc) {
      opts.save_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-monitors")) {
      opts.monitors = false;
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      opts.shrink = false;
    } else {
      return usage();
    }
  }
  if (opts.plans <= 0) return usage();

  std::vector<const CampaignTarget*> picked;
  if (names.empty()) {
    for (const auto& t : campaign_targets()) picked.push_back(&t);
  } else {
    for (const auto& n : names) {
      const CampaignTarget* t = find_campaign_target(n);
      if (!t) {
        std::fprintf(stderr, "efd_campaign: unknown target '%s' (try: efd_campaign list)\n",
                     n.c_str());
        return 2;
      }
      picked.push_back(t);
    }
  }

  std::vector<CampaignRun> runs;
  bool all_ok = true;
  for (const CampaignTarget* t : picked) {
    CampaignRun r = run_campaign(*t, opts);
    const bool ok = r.verdict_ok();
    all_ok = all_ok && ok;
    std::fprintf(stderr,
                 "%-8s %4d plans  %4d clean  %2d safety  %2d wait-free  %3" PRId64
                 " starvation obs  %s\n",
                 r.target.c_str(), r.plans, r.clean_plans, r.safety_violations(),
                 r.wait_free_violations(), r.starvation_observations,
                 ok ? "OK" : (r.expect_clean ? "VIOLATIONS" : "BUG NOT CAUGHT"));
    for (const auto& v : r.violations) {
      std::fprintf(stderr, "         seed %" PRIu64 " [%s] %s\n", v.plan_seed, v.plan.c_str(),
                   v.detail.c_str());
      if (v.shrunk_steps > 0) {
        std::fprintf(stderr, "         shrunk %" PRId64 " -> %" PRId64 " steps, replay %s\n",
                     v.tape_steps, v.shrunk_steps, v.shrunk_replay_ok ? "verified" : "FAILED");
      }
    }
    runs.push_back(std::move(r));
  }

  const std::string doc = campaign_json(runs, opts).dump(2);
  if (out_path.empty()) {
    std::printf("%s\n", doc.c_str());
  } else {
    std::ofstream out(out_path);
    out << doc << "\n";
    if (!out) {
      std::fprintf(stderr, "efd_campaign: cannot write %s\n", out_path.c_str());
      return 6;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "efd_campaign: %s\n", e.what());
    return 6;
  }
  return usage();
}
