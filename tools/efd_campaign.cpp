// efd_campaign: seeded adversarial fault campaigns over the paper algorithms.
//
//   efd_campaign list
//   efd_campaign run   [--seed N] [--plans N] [--target NAME ...]
//                      [--save-dir DIR] [--out FILE]
//                      [--no-monitors] [--no-shrink]
//   efd_campaign serve [--seed N] [--target NAME ...] [--corpus DIR]
//                      [--seed-corpus DIR ...] [--workers N] [--batch N]
//                      [--duration SECS] [--max-plans N] [--queue FIFO]
//                      [--soak-interval SECS] [--out FILE]
//                      [--no-monitors] [--no-shrink] [--no-mutate]
//
// `run` sweeps N random FaultPlans (crash storms, targeted trigger kills,
// lying/omissive/stuttering advice, starvation bursts) per campaign target —
// the paper algorithms expected to survive everything, plus the seeded-buggy
// variants the campaign must catch. Violations are saved as replayable
// `efd-tape-v1` tapes (default: tests/corpus/pending/), safety findings are
// ddmin-shrunk and double-replay-verified, and the sweep summary is emitted
// as `efd-campaign-v1` JSON (schema in EXPERIMENTS.md E15; bench_diff.py
// --validate accepts it).
//
// `serve` is the resident campaign farm (DESIGN.md 4g, EXPERIMENTS.md E18):
// it streams seeded + coverage-mutated plans — plus external submissions
// read line-by-line from a --queue FIFO as `<target> <plan-text>` — across
// all workers as work-stealing batches, dedups findings against the
// persistent content-hashed corpus in --corpus, shrinks + double-replay-
// verifies only novel findings, and prints one `efd-campaign-farm-v1` soak
// record per --soak-interval to stdout (the final record goes to --out when
// given). SIGINT drains gracefully: the in-flight batch completes, its
// findings are classified and persisted, and the final record is emitted.
// Restarting with the same --corpus resumes from the persisted finding set,
// so known findings are reported as duplicates, not rediscoveries.
//
// Exit codes: 0 every target met its verdict (clean targets clean, buggy
// targets caught with a verified shrunk tape; serve: clean exit or drain);
// 1 some verdict failed; 2 usage error; 6 any other error; 7 a save/corpus
// directory could not be created or written.
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "core/campaign.hpp"

namespace {

using namespace efd;

std::atomic<bool> g_stop{false};

void on_sigint(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(stderr,
               "usage: efd_campaign list\n"
               "       efd_campaign run [--seed N] [--plans N] [--target NAME ...]\n"
               "                        [--save-dir DIR] [--out FILE]\n"
               "                        [--no-monitors] [--no-shrink]\n"
               "       efd_campaign serve [--seed N] [--target NAME ...] [--corpus DIR]\n"
               "                          [--seed-corpus DIR ...] [--workers N] [--batch N]\n"
               "                          [--duration SECS] [--max-plans N] [--queue FIFO]\n"
               "                          [--soak-interval SECS] [--out FILE]\n"
               "                          [--no-monitors] [--no-shrink] [--no-mutate]\n");
  return 2;
}

int cmd_list() {
  for (const auto& t : campaign_targets()) {
    std::printf("%-8s %-26s %s%s\n", t.name.c_str(), t.scenario.c_str(), t.algorithm.c_str(),
                t.expect_clean ? "" : "  [seeded bug]");
  }
  return 0;
}

std::vector<const CampaignTarget*> pick_targets(const std::vector<std::string>& names,
                                                bool* ok) {
  *ok = true;
  std::vector<const CampaignTarget*> picked;
  if (names.empty()) {
    for (const auto& t : campaign_targets()) picked.push_back(&t);
    return picked;
  }
  for (const auto& n : names) {
    const CampaignTarget* t = find_campaign_target(n);
    if (!t) {
      std::fprintf(stderr, "efd_campaign: unknown target '%s' (try: efd_campaign list)\n",
                   n.c_str());
      *ok = false;
      return {};
    }
    picked.push_back(t);
  }
  return picked;
}

int cmd_run(int argc, char** argv) {
  CampaignOptions opts;
  opts.save_dir = "tests/corpus/pending";
  std::vector<std::string> names;
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (!std::strcmp(argv[i], "--plans") && i + 1 < argc) {
      opts.plans = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--target") && i + 1 < argc) {
      names.emplace_back(argv[++i]);
    } else if (!std::strcmp(argv[i], "--save-dir") && i + 1 < argc) {
      opts.save_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-monitors")) {
      opts.monitors = false;
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      opts.shrink = false;
    } else {
      return usage();
    }
  }
  if (opts.plans <= 0) return usage();

  bool names_ok = false;
  const std::vector<const CampaignTarget*> picked = pick_targets(names, &names_ok);
  if (!names_ok) return 2;

  std::vector<CampaignRun> runs;
  bool all_ok = true;
  for (const CampaignTarget* t : picked) {
    CampaignRun r = run_campaign(*t, opts);
    const bool ok = r.verdict_ok();
    all_ok = all_ok && ok;
    std::fprintf(stderr,
                 "%-8s %4d plans  %4d clean  %2d safety  %2d wait-free  %3" PRId64
                 " starvation obs  %s\n",
                 r.target.c_str(), r.plans, r.clean_plans, r.safety_violations(),
                 r.wait_free_violations(), r.starvation_observations,
                 ok ? "OK" : (r.expect_clean ? "VIOLATIONS" : "BUG NOT CAUGHT"));
    for (const auto& v : r.violations) {
      std::fprintf(stderr, "         seed %" PRIu64 " [%s] %s\n", v.plan_seed, v.plan.c_str(),
                   v.detail.c_str());
      if (v.shrunk_steps > 0) {
        std::fprintf(stderr, "         shrunk %" PRId64 " -> %" PRId64 " steps, replay %s\n",
                     v.tape_steps, v.shrunk_steps, v.shrunk_replay_ok ? "verified" : "FAILED");
      }
    }
    runs.push_back(std::move(r));
  }

  const std::string doc = campaign_json(runs, opts).dump(2);
  if (out_path.empty()) {
    std::printf("%s\n", doc.c_str());
  } else {
    std::ofstream out(out_path);
    out << doc << "\n";
    if (!out) {
      std::fprintf(stderr, "efd_campaign: cannot write %s\n", out_path.c_str());
      return 6;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return all_ok ? 0 : 1;
}

/// Non-blocking line reader over a FIFO (or any file): each poll() returns
/// one `<target> <plan-text>` submission. Malformed lines (bad plan text,
/// missing target) are reported to stderr and dropped — a typo in the queue
/// must not take the farm down. EOF with no writer is quiet: a FIFO opened
/// O_RDONLY|O_NONBLOCK reads 0 bytes until the next writer connects.
class FifoPlanSource final : public PlanSource {
 public:
  explicit FifoPlanSource(const std::string& path) : path_(path) {
    fd_ = ::open(path.c_str(), O_RDONLY | O_NONBLOCK);
    if (fd_ < 0) {
      throw std::runtime_error("cannot open queue " + path + ": " + std::strerror(errno));
    }
  }
  FifoPlanSource(const FifoPlanSource&) = delete;
  FifoPlanSource& operator=(const FifoPlanSource&) = delete;
  ~FifoPlanSource() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::optional<std::pair<std::string, FaultPlan>> poll() override {
    for (;;) {
      if (auto sub = take_line()) return sub;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return std::nullopt;  // drained (or EAGAIN / no writer yet)
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  std::optional<std::pair<std::string, FaultPlan>> take_line() {
    for (;;) {
      const auto nl = buf_.find('\n');
      if (nl == std::string::npos) return std::nullopt;
      const std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (line.empty() || line[0] == '#') continue;
      const auto sp = line.find(' ');
      if (sp == std::string::npos) {
        std::fprintf(stderr, "efd_campaign: queue line without plan text dropped: %s\n",
                     line.c_str());
        continue;
      }
      try {
        FaultPlan plan = FaultPlan::parse(line.substr(sp + 1));
        return std::make_pair(line.substr(0, sp), std::move(plan));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "efd_campaign: malformed queue plan dropped (%s): %s\n", e.what(),
                     line.c_str());
      }
    }
  }

  std::string path_;
  int fd_ = -1;
  std::string buf_;
};

int cmd_serve(int argc, char** argv) {
  FarmOptions opts;
  std::vector<std::string> names;
  std::string out_path;
  std::string queue_path;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (!std::strcmp(argv[i], "--target") && i + 1 < argc) {
      names.emplace_back(argv[++i]);
    } else if (!std::strcmp(argv[i], "--corpus") && i + 1 < argc) {
      opts.corpus_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--seed-corpus") && i + 1 < argc) {
      opts.seed_corpora.emplace_back(argv[++i]);
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      opts.workers = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--batch") && i + 1 < argc) {
      opts.batch = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--duration") && i + 1 < argc) {
      opts.duration_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--max-plans") && i + 1 < argc) {
      opts.max_plans = std::atoll(argv[++i]);
    } else if (!std::strcmp(argv[i], "--queue") && i + 1 < argc) {
      queue_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--soak-interval") && i + 1 < argc) {
      opts.soak_interval_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--no-monitors")) {
      opts.monitors = false;
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      opts.shrink = false;
    } else if (!std::strcmp(argv[i], "--no-mutate")) {
      opts.mutate = false;
    } else {
      return usage();
    }
  }
  if (opts.workers <= 0 || opts.batch <= 0) return usage();

  bool names_ok = false;
  const std::vector<const CampaignTarget*> picked = pick_targets(names, &names_ok);
  if (!names_ok) return 2;

  std::unique_ptr<FifoPlanSource> queue;
  if (!queue_path.empty()) {
    queue = std::make_unique<FifoPlanSource>(queue_path);
    opts.source = queue.get();
  }

  opts.stop = &g_stop;
  std::signal(SIGINT, on_sigint);
  std::signal(SIGTERM, on_sigint);

  std::string final_doc;
  opts.on_soak = [&final_doc](const telemetry::Json& rec) {
    const std::string line = rec.dump(0);
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
    final_doc = line;  // the "final" record is always the last one emitted
  };

  const FarmStats stats = run_farm(picked, opts);
  std::fprintf(stderr,
               "farm: %" PRId64 " plans in %.1fs (%.0f plans/s), %" PRId64 " clean, %" PRId64
               " violations (%" PRId64 " novel, %" PRId64 " duplicate), corpus %zu entries"
               " (+%zu aliases)%s\n",
               stats.plans, stats.elapsed_s,
               stats.elapsed_s > 0 ? static_cast<double>(stats.plans) / stats.elapsed_s : 0.0,
               stats.clean, stats.violations, stats.novel, stats.duplicates, stats.corpus_size,
               stats.corpus_aliases, stats.drained ? "  [drained]" : "");

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << farm_json(stats, opts, "final").dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "efd_campaign: cannot write %s\n", out_path.c_str());
      return 6;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }

  // Verdict: expect-clean targets must have zero violations; a drain is not
  // a failure. Buggy targets are allowed to keep re-finding their bug.
  for (const auto& t : stats.targets) {
    if (t.expect_clean && (t.safety_violations > 0 || t.wait_free_violations > 0)) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  } catch (const efd::CorpusIoError& e) {
    std::fprintf(stderr, "efd_campaign: %s\n", e.what());
    return 7;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "efd_campaign: %s\n", e.what());
    return 6;
  }
  return usage();
}
