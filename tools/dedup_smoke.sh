#!/usr/bin/env sh
# Tiered dedup store smoke check (ctest -L dedup): the same sweep through the
# plain in-memory store and through a RAM-capped tiered store must report
# IDENTICAL semantic counters (states, terminal runs, unique signatures) —
# the tiers only move where duplicates are found — while the tiered run must
# actually exercise the disk (spills > 0) and must leave nothing behind in
# its spill directory. Also checks the capped mem-only configuration degrades
# to a lower-bound verdict (exit 3) instead of pretending to certify.
#
# usage: dedup_smoke.sh <efd_dedup_sweep-binary> [workdir]
set -eu

sweep="$1"
work="${2:-$(mktemp -d)}"
mkdir -p "$work"
spill="$work/spill"
mkdir -p "$spill"

# Sweep small enough for sanitizer builds, big enough to force spill traffic
# through a 1 MiB budget (the (5,2) level-2 sweep holds ~103k signatures).
common="--n 5 --set-k 2 --level 2 --max-states 400000"

# Field extractor: first occurrence wins ("states" also prefixes
# "states_per_s", so match the quoted key exactly).
field() { # file key
  sed -n "s/^.*\"$2\": \([0-9-][0-9]*\).*$/\1/p" "$1" | head -1
}

$sweep $common --tiers mem --mem-mb 0 --out "$work/mem.json"
$sweep $common --tiers tiered --mem-mb 1 --spill-dir "$spill" --out "$work/tiered.json"

grep -q '"schema": "efd-dedup-sweep-v1"' "$work/mem.json" || {
  echo "FAIL: mem.json is not an efd-dedup-sweep-v1 document" >&2
  exit 1
}

for key in states terminal_runs dedup_queries dedup_misses dedup_hits; do
  a="$(field "$work/mem.json" $key)"
  b="$(field "$work/tiered.json" $key)"
  [ -n "$a" ] && [ "$a" = "$b" ] || {
    echo "FAIL: semantic counter $key diverged: mem=$a tiered=$b" >&2
    exit 1
  }
done

spills="$(field "$work/tiered.json" spills)"
[ "${spills:-0}" -gt 0 ] || {
  echo "FAIL: tiered sweep under a 1 MiB cap never spilled (spills=$spills)" >&2
  exit 1
}

grep -q '"verdict": "clean"' "$work/tiered.json" || {
  echo "FAIL: tiered sweep did not certify the level" >&2
  exit 1
}

# Run files are unlinked at mmap time and the mkdtemp'd directory is removed
# with the store: an out-of-core sweep must leave the spill root pristine.
leftover="$(find "$spill" -mindepth 1 | head -5)"
[ -z "$leftover" ] || {
  echo "FAIL: spill root not cleaned up:" >&2
  echo "$leftover" >&2
  exit 1
}

# Capped mem-only: must stop early and say so (exit 3 = lower bound), never
# report a certified level.
rc=0
$sweep $common --tiers mem --mem-mb 1 --out "$work/capped.json" >/dev/null || rc=$?
[ "$rc" -eq 3 ] || {
  echo "FAIL: capped mem-only sweep exited $rc, want 3 (lower bound)" >&2
  exit 1
}
grep -q '"mem_exhausted": true' "$work/capped.json" || {
  echo "FAIL: capped sweep did not latch mem_exhausted" >&2
  exit 1
}
capped_states="$(field "$work/capped.json" states)"
full_states="$(field "$work/mem.json" states)"
[ "$capped_states" -lt "$full_states" ] || {
  echo "FAIL: capped sweep explored $capped_states states, full sweep $full_states" >&2
  exit 1
}

echo "dedup_smoke: OK (states=$full_states, spills=$spills, capped=$capped_states+)"
