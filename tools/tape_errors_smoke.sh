#!/usr/bin/env sh
# Malformed-tape triage contract: every fixture in tests/corpus/malformed/
# must fail `efd_repro replay` with the DOCUMENTED exit code (3 = parse,
# 4 = IO, 5 = unknown scenario) and a one-line diagnostic on stderr —
# scripted triage sorts tapes by these codes, so they are part of the CLI's
# stable interface (see the exit-code table in efd_repro.cpp).
#
# usage: tape_errors_smoke.sh <efd_repro-binary> <malformed-corpus-dir>
set -u

repro="$1"
dir="$2"
fail=0

expect_code() {
  tape="$1"
  want="$2"
  err=$("$repro" replay "$tape" 2>&1 >/dev/null)
  got=$?
  if [ "$got" != "$want" ]; then
    echo "FAIL: $tape exited $got, want $want" >&2
    fail=1
    return
  fi
  if [ -z "$err" ]; then
    echo "FAIL: $tape produced no diagnostic" >&2
    fail=1
    return
  fi
  if [ "$(printf '%s\n' "$err" | wc -l)" != "1" ]; then
    echo "FAIL: $tape diagnostic is not one line:" >&2
    printf '%s\n' "$err" >&2
    fail=1
    return
  fi
  echo "ok: $(basename "$tape") -> $got ($err)"
}

for tape in "$dir"/*.tape; do
  case "$(basename "$tape")" in
    unknown_scenario.tape) expect_code "$tape" 5 ;;
    *) expect_code "$tape" 3 ;;
  esac
done

expect_code "$dir/does-not-exist.tape.missing" 4

# `print` must fail identically: the parse happens before any replay.
"$repro" print "$dir/truncated.tape" >/dev/null 2>&1
if [ $? != 3 ]; then
  echo "FAIL: print truncated.tape did not exit 3" >&2
  fail=1
fi

exit $fail
