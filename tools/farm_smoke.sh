#!/usr/bin/env sh
# Campaign farm smoke check (ctest -L campaign): the `serve` daemon must
#
#  1. run a short bounded soak over all targets, persist its novel findings
#     into a content-hashed corpus, and emit schema-valid
#     efd-campaign-farm-v1 soak records (checked with bench_diff.py
#     --validate when python3 is available);
#  2. RESUME: a restart over the same corpus with the same seed must
#     classify every known finding as a duplicate — zero novel findings;
#  3. DRAIN: an unbounded serve must exit 0 on SIGINT with the in-flight
#     batch completed and the final record stamped "drained": true.
#
# usage: farm_smoke.sh <efd_campaign-binary> [workdir]
set -eu

campaign="$1"
work="${2:-$(mktemp -d)}"
script_dir="$(cd "$(dirname "$0")" && pwd)"
rm -rf "$work"
mkdir -p "$work"
corpus="$work/corpus"

# Small plan budget + small batches keep this viable under sanitizers while
# still crossing several batch boundaries per phase. The torn-commit target
# (tw) is excluded for the same reason as in campaign_smoke.sh.
targets="--target cons --target ksa --target ren --target p1c \
  --target synth --target bcf --target brn"

# --- 1: bounded soak populates the corpus ---------------------------------
"$campaign" serve --seed 42 --max-plans 112 --batch 28 --workers 4 \
  --soak-interval 0.2 --corpus "$corpus" --out "$work/final1.json" \
  $targets > "$work/soak1.jsonl"

grep -q '"schema":"efd-campaign-farm-v1"' "$work/soak1.jsonl" || {
  echo "FAIL: soak stream carries no efd-campaign-farm-v1 records" >&2
  exit 1
}
grep -q '"mode":"final"' "$work/soak1.jsonl" || {
  echo "FAIL: soak stream is missing the final record" >&2
  exit 1
}
ls "$corpus"/*.tape >/dev/null 2>&1 || {
  echo "FAIL: the soak persisted no corpus tapes" >&2
  exit 1
}
# Top-level counters sit at 2-space indent; per-target ones (which MAY be
# zero for the clean targets) at 6 — anchor so only the totals match.
grep -q '^  "novel": 0,' "$work/final1.json" && {
  echo "FAIL: first soak reported zero novel findings" >&2
  exit 1
}

if command -v python3 >/dev/null 2>&1; then
  python3 "$script_dir/bench_diff.py" --validate "$work/soak1.jsonl" "$work/final1.json"
fi

# --- 2: restart-with-corpus resumes, not rediscovers ----------------------
"$campaign" serve --seed 42 --max-plans 112 --batch 28 --workers 4 \
  --soak-interval 0.2 --corpus "$corpus" --out "$work/final2.json" \
  $targets > "$work/soak2.jsonl"

grep -q '^  "novel": 0,' "$work/final2.json" || {
  echo "FAIL: restart over the persisted corpus reported novel findings" >&2
  exit 1
}
grep -q '^  "duplicates": 0,' "$work/final2.json" && {
  echo "FAIL: restart classified no finding as duplicate" >&2
  exit 1
}

# --- 3: SIGINT drains gracefully ------------------------------------------
"$campaign" serve --seed 7 --batch 16 --workers 4 --soak-interval 0.2 \
  --corpus "$work/corpus_drain" --out "$work/final3.json" \
  $targets > "$work/soak3.jsonl" &
pid=$!
sleep 2
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" != "0" ]; then
  echo "FAIL: SIGINT drain exited $rc, want 0" >&2
  exit 1
fi
grep -q '^  "drained": true,' "$work/final3.json" || {
  echo "FAIL: drained serve did not stamp drained:true" >&2
  exit 1
}

# --- 4: external queue submissions are executed ---------------------------
# A regular file works as a pre-filled queue (the FIFO reader polls any
# O_NONBLOCK-readable fd); malformed lines must be dropped, not fatal.
{
  echo "# comment"
  echo "cons plan-v1; storm 10 0"
  echo "cons this-is-not-a-plan"
  echo "nosuchtarget plan-v1"
  echo "synth plan-v1; burst 5 20 p1"
} > "$work/queue"
"$campaign" serve --seed 3 --max-plans 28 --batch 28 --workers 4 \
  --queue "$work/queue" --corpus "$work/corpus_q" --out "$work/final4.json" \
  $targets > "$work/soak4.jsonl"
grep -q '^  "external": 2,' "$work/final4.json" || {
  echo "FAIL: queue submissions were not executed (want external: 2)" >&2
  exit 1
}

echo "farm smoke ok: $work"
