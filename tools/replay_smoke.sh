#!/bin/sh
# End-to-end shrinker smoke: record the synthetic known-bad scenario
# (synth_write_race — a write race whose minimal witness is 3 steps), ddmin
# it, and assert the minimized tape (a) still replays as violated and (b) is
# at most a quarter of the recorded schedule. Exercises the whole
# record -> shrink -> replay pipeline through the efd_repro CLI, exactly the
# workflow a developer uses on a real fuzz counterexample.
#
# Usage: replay_smoke.sh EFD_REPRO_BINARY
set -eu

bin=$1

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Seed 1 is a verified violating seed for synth_write_race (p2's write lands
# after p1's); the scenario stamps expect from the observed run, so guard
# against the seed ever drifting to a non-violating recording.
"$bin" record synth_write_race --seed 1 -o "$tmpdir/race.tape" > "$tmpdir/record.txt"
grep -q '^expect *violated$' "$tmpdir/race.tape" || {
    echo "replay_smoke: recording did not violate (seed drift?)" >&2
    cat "$tmpdir/record.txt" >&2
    exit 1
}

"$bin" shrink "$tmpdir/race.tape" -o "$tmpdir/race.min.tape" > "$tmpdir/shrink.txt"
cat "$tmpdir/shrink.txt"

# The minimized tape must still be a counterexample, bit-for-bit replayable.
"$bin" replay "$tmpdir/race.min.tape"

orig=$(sed -n 's/^steps \([0-9][0-9]*\)$/\1/p' "$tmpdir/race.tape")
min=$(sed -n 's/^steps \([0-9][0-9]*\)$/\1/p' "$tmpdir/race.min.tape")

if [ -z "$orig" ] || [ -z "$min" ]; then
    echo "replay_smoke: could not read step counts" >&2
    exit 1
fi
if [ "$min" -lt 1 ]; then
    echo "replay_smoke: minimized tape is empty" >&2
    exit 1
fi
if [ $((min * 4)) -gt "$orig" ]; then
    echo "replay_smoke: shrinker too weak: $orig -> $min steps (> 25%)" >&2
    exit 1
fi
echo "replay_smoke: OK ($orig -> $min steps)"
