# Empty compiler generated dependencies file for weakest_roundtrip_demo.
# This may be replaced when dependencies are built.
