file(REMOVE_RECURSE
  "CMakeFiles/weakest_roundtrip_demo.dir/weakest_roundtrip_demo.cpp.o"
  "CMakeFiles/weakest_roundtrip_demo.dir/weakest_roundtrip_demo.cpp.o.d"
  "weakest_roundtrip_demo"
  "weakest_roundtrip_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weakest_roundtrip_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
