file(REMOVE_RECURSE
  "CMakeFiles/puzzle_demo.dir/puzzle_demo.cpp.o"
  "CMakeFiles/puzzle_demo.dir/puzzle_demo.cpp.o.d"
  "puzzle_demo"
  "puzzle_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/puzzle_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
