# Empty dependencies file for puzzle_demo.
# This may be replaced when dependencies are built.
