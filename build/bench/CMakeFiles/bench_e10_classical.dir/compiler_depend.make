# Empty compiler generated dependencies file for bench_e10_classical.
# This may be replaced when dependencies are built.
