file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_classical.dir/bench_e10_classical.cpp.o"
  "CMakeFiles/bench_e10_classical.dir/bench_e10_classical.cpp.o.d"
  "bench_e10_classical"
  "bench_e10_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
