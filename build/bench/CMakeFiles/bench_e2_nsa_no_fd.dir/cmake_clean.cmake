file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_nsa_no_fd.dir/bench_e2_nsa_no_fd.cpp.o"
  "CMakeFiles/bench_e2_nsa_no_fd.dir/bench_e2_nsa_no_fd.cpp.o.d"
  "bench_e2_nsa_no_fd"
  "bench_e2_nsa_no_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_nsa_no_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
