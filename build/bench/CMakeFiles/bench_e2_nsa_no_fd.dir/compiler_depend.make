# Empty compiler generated dependencies file for bench_e2_nsa_no_fd.
# This may be replaced when dependencies are built.
