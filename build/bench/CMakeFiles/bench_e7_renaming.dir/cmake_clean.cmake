file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_renaming.dir/bench_e7_renaming.cpp.o"
  "CMakeFiles/bench_e7_renaming.dir/bench_e7_renaming.cpp.o.d"
  "bench_e7_renaming"
  "bench_e7_renaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
