# Empty dependencies file for bench_e7_renaming.
# This may be replaced when dependencies are built.
