file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_one_resilient.dir/bench_e11_one_resilient.cpp.o"
  "CMakeFiles/bench_e11_one_resilient.dir/bench_e11_one_resilient.cpp.o.d"
  "bench_e11_one_resilient"
  "bench_e11_one_resilient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_one_resilient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
