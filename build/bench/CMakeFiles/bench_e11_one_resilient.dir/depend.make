# Empty dependencies file for bench_e11_one_resilient.
# This may be replaced when dependencies are built.
