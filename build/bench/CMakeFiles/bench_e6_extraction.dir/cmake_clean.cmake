file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_extraction.dir/bench_e6_extraction.cpp.o"
  "CMakeFiles/bench_e6_extraction.dir/bench_e6_extraction.cpp.o.d"
  "bench_e6_extraction"
  "bench_e6_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
