# Empty compiler generated dependencies file for bench_e6_extraction.
# This may be replaced when dependencies are built.
