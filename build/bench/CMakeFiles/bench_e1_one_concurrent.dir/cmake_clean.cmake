file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_one_concurrent.dir/bench_e1_one_concurrent.cpp.o"
  "CMakeFiles/bench_e1_one_concurrent.dir/bench_e1_one_concurrent.cpp.o.d"
  "bench_e1_one_concurrent"
  "bench_e1_one_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_one_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
