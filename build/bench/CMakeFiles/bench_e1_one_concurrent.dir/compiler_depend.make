# Empty compiler generated dependencies file for bench_e1_one_concurrent.
# This may be replaced when dependencies are built.
