file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_kcodes.dir/bench_e3_kcodes.cpp.o"
  "CMakeFiles/bench_e3_kcodes.dir/bench_e3_kcodes.cpp.o.d"
  "bench_e3_kcodes"
  "bench_e3_kcodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_kcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
