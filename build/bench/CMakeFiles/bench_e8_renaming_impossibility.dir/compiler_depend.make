# Empty compiler generated dependencies file for bench_e8_renaming_impossibility.
# This may be replaced when dependencies are built.
