file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_renaming_impossibility.dir/bench_e8_renaming_impossibility.cpp.o"
  "CMakeFiles/bench_e8_renaming_impossibility.dir/bench_e8_renaming_impossibility.cpp.o.d"
  "bench_e8_renaming_impossibility"
  "bench_e8_renaming_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_renaming_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
