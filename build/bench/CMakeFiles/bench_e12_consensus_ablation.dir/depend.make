# Empty dependencies file for bench_e12_consensus_ablation.
# This may be replaced when dependencies are built.
