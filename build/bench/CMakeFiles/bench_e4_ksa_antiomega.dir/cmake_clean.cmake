file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_ksa_antiomega.dir/bench_e4_ksa_antiomega.cpp.o"
  "CMakeFiles/bench_e4_ksa_antiomega.dir/bench_e4_ksa_antiomega.cpp.o.d"
  "bench_e4_ksa_antiomega"
  "bench_e4_ksa_antiomega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_ksa_antiomega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
