# Empty compiler generated dependencies file for bench_e4_ksa_antiomega.
# This may be replaced when dependencies are built.
