file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_hierarchy.dir/bench_e9_hierarchy.cpp.o"
  "CMakeFiles/bench_e9_hierarchy.dir/bench_e9_hierarchy.cpp.o.d"
  "bench_e9_hierarchy"
  "bench_e9_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
