# Empty dependencies file for bench_e9_hierarchy.
# This may be replaced when dependencies are built.
