# Empty dependencies file for bench_e5_puzzle.
# This may be replaced when dependencies are built.
