file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_puzzle.dir/bench_e5_puzzle.cpp.o"
  "CMakeFiles/bench_e5_puzzle.dir/bench_e5_puzzle.cpp.o.d"
  "bench_e5_puzzle"
  "bench_e5_puzzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_puzzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
