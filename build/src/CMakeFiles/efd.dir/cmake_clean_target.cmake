file(REMOVE_RECURSE
  "libefd.a"
)
