# Empty compiler generated dependencies file for efd.
# This may be replaced when dependencies are built.
