
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/adopt_commit.cpp" "src/CMakeFiles/efd.dir/algo/adopt_commit.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/adopt_commit.cpp.o.d"
  "/root/repo/src/algo/bg_simulation.cpp" "src/CMakeFiles/efd.dir/algo/bg_simulation.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/bg_simulation.cpp.o.d"
  "/root/repo/src/algo/booster.cpp" "src/CMakeFiles/efd.dir/algo/booster.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/booster.cpp.o.d"
  "/root/repo/src/algo/double_sim.cpp" "src/CMakeFiles/efd.dir/algo/double_sim.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/double_sim.cpp.o.d"
  "/root/repo/src/algo/extraction.cpp" "src/CMakeFiles/efd.dir/algo/extraction.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/extraction.cpp.o.d"
  "/root/repo/src/algo/k_codes_sim.cpp" "src/CMakeFiles/efd.dir/algo/k_codes_sim.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/k_codes_sim.cpp.o.d"
  "/root/repo/src/algo/leader_consensus.cpp" "src/CMakeFiles/efd.dir/algo/leader_consensus.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/leader_consensus.cpp.o.d"
  "/root/repo/src/algo/one_concurrent.cpp" "src/CMakeFiles/efd.dir/algo/one_concurrent.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/one_concurrent.cpp.o.d"
  "/root/repo/src/algo/participating_set.cpp" "src/CMakeFiles/efd.dir/algo/participating_set.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/participating_set.cpp.o.d"
  "/root/repo/src/algo/paxos.cpp" "src/CMakeFiles/efd.dir/algo/paxos.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/paxos.cpp.o.d"
  "/root/repo/src/algo/renaming.cpp" "src/CMakeFiles/efd.dir/algo/renaming.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/renaming.cpp.o.d"
  "/root/repo/src/algo/renaming_1resilient.cpp" "src/CMakeFiles/efd.dir/algo/renaming_1resilient.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/renaming_1resilient.cpp.o.d"
  "/root/repo/src/algo/safe_agreement.cpp" "src/CMakeFiles/efd.dir/algo/safe_agreement.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/safe_agreement.cpp.o.d"
  "/root/repo/src/algo/set_agreement_antiomega.cpp" "src/CMakeFiles/efd.dir/algo/set_agreement_antiomega.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/set_agreement_antiomega.cpp.o.d"
  "/root/repo/src/algo/sim_program.cpp" "src/CMakeFiles/efd.dir/algo/sim_program.cpp.o" "gcc" "src/CMakeFiles/efd.dir/algo/sim_program.cpp.o.d"
  "/root/repo/src/core/bivalence.cpp" "src/CMakeFiles/efd.dir/core/bivalence.cpp.o" "gcc" "src/CMakeFiles/efd.dir/core/bivalence.cpp.o.d"
  "/root/repo/src/core/efd_system.cpp" "src/CMakeFiles/efd.dir/core/efd_system.cpp.o" "gcc" "src/CMakeFiles/efd.dir/core/efd_system.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/CMakeFiles/efd.dir/core/hierarchy.cpp.o" "gcc" "src/CMakeFiles/efd.dir/core/hierarchy.cpp.o.d"
  "/root/repo/src/core/reduction.cpp" "src/CMakeFiles/efd.dir/core/reduction.cpp.o" "gcc" "src/CMakeFiles/efd.dir/core/reduction.cpp.o.d"
  "/root/repo/src/core/solvability.cpp" "src/CMakeFiles/efd.dir/core/solvability.cpp.o" "gcc" "src/CMakeFiles/efd.dir/core/solvability.cpp.o.d"
  "/root/repo/src/core/weakest.cpp" "src/CMakeFiles/efd.dir/core/weakest.cpp.o" "gcc" "src/CMakeFiles/efd.dir/core/weakest.cpp.o.d"
  "/root/repo/src/fd/dag.cpp" "src/CMakeFiles/efd.dir/fd/dag.cpp.o" "gcc" "src/CMakeFiles/efd.dir/fd/dag.cpp.o.d"
  "/root/repo/src/fd/detectors.cpp" "src/CMakeFiles/efd.dir/fd/detectors.cpp.o" "gcc" "src/CMakeFiles/efd.dir/fd/detectors.cpp.o.d"
  "/root/repo/src/fd/emulations.cpp" "src/CMakeFiles/efd.dir/fd/emulations.cpp.o" "gcc" "src/CMakeFiles/efd.dir/fd/emulations.cpp.o.d"
  "/root/repo/src/fd/failure_pattern.cpp" "src/CMakeFiles/efd.dir/fd/failure_pattern.cpp.o" "gcc" "src/CMakeFiles/efd.dir/fd/failure_pattern.cpp.o.d"
  "/root/repo/src/fd/reduction.cpp" "src/CMakeFiles/efd.dir/fd/reduction.cpp.o" "gcc" "src/CMakeFiles/efd.dir/fd/reduction.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/efd.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/efd.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/proc.cpp" "src/CMakeFiles/efd.dir/sim/proc.cpp.o" "gcc" "src/CMakeFiles/efd.dir/sim/proc.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/efd.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/efd.dir/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/snapshot.cpp" "src/CMakeFiles/efd.dir/sim/snapshot.cpp.o" "gcc" "src/CMakeFiles/efd.dir/sim/snapshot.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/efd.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/efd.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/value.cpp" "src/CMakeFiles/efd.dir/sim/value.cpp.o" "gcc" "src/CMakeFiles/efd.dir/sim/value.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/efd.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/efd.dir/sim/world.cpp.o.d"
  "/root/repo/src/tasks/consensus.cpp" "src/CMakeFiles/efd.dir/tasks/consensus.cpp.o" "gcc" "src/CMakeFiles/efd.dir/tasks/consensus.cpp.o.d"
  "/root/repo/src/tasks/participating_set.cpp" "src/CMakeFiles/efd.dir/tasks/participating_set.cpp.o" "gcc" "src/CMakeFiles/efd.dir/tasks/participating_set.cpp.o.d"
  "/root/repo/src/tasks/renaming.cpp" "src/CMakeFiles/efd.dir/tasks/renaming.cpp.o" "gcc" "src/CMakeFiles/efd.dir/tasks/renaming.cpp.o.d"
  "/root/repo/src/tasks/set_agreement.cpp" "src/CMakeFiles/efd.dir/tasks/set_agreement.cpp.o" "gcc" "src/CMakeFiles/efd.dir/tasks/set_agreement.cpp.o.d"
  "/root/repo/src/tasks/symmetry_breaking.cpp" "src/CMakeFiles/efd.dir/tasks/symmetry_breaking.cpp.o" "gcc" "src/CMakeFiles/efd.dir/tasks/symmetry_breaking.cpp.o.d"
  "/root/repo/src/tasks/task.cpp" "src/CMakeFiles/efd.dir/tasks/task.cpp.o" "gcc" "src/CMakeFiles/efd.dir/tasks/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
