# Empty dependencies file for test_kcodes.
# This may be replaced when dependencies are built.
