file(REMOVE_RECURSE
  "CMakeFiles/test_kcodes.dir/test_kcodes.cpp.o"
  "CMakeFiles/test_kcodes.dir/test_kcodes.cpp.o.d"
  "test_kcodes"
  "test_kcodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kcodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
