# Empty dependencies file for test_safe_agreement.
# This may be replaced when dependencies are built.
