file(REMOVE_RECURSE
  "CMakeFiles/test_safe_agreement.dir/test_safe_agreement.cpp.o"
  "CMakeFiles/test_safe_agreement.dir/test_safe_agreement.cpp.o.d"
  "test_safe_agreement"
  "test_safe_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safe_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
