file(REMOVE_RECURSE
  "CMakeFiles/test_sim_program.dir/test_sim_program.cpp.o"
  "CMakeFiles/test_sim_program.dir/test_sim_program.cpp.o.d"
  "test_sim_program"
  "test_sim_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
