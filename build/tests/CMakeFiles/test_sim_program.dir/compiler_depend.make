# Empty compiler generated dependencies file for test_sim_program.
# This may be replaced when dependencies are built.
