# Empty dependencies file for test_bg.
# This may be replaced when dependencies are built.
