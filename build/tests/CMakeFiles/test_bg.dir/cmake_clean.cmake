file(REMOVE_RECURSE
  "CMakeFiles/test_bg.dir/test_bg.cpp.o"
  "CMakeFiles/test_bg.dir/test_bg.cpp.o.d"
  "test_bg"
  "test_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
