file(REMOVE_RECURSE
  "CMakeFiles/test_ksa.dir/test_ksa.cpp.o"
  "CMakeFiles/test_ksa.dir/test_ksa.cpp.o.d"
  "test_ksa"
  "test_ksa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ksa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
