# Empty compiler generated dependencies file for test_ksa.
# This may be replaced when dependencies are built.
