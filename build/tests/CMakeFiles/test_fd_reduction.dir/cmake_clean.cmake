file(REMOVE_RECURSE
  "CMakeFiles/test_fd_reduction.dir/test_fd_reduction.cpp.o"
  "CMakeFiles/test_fd_reduction.dir/test_fd_reduction.cpp.o.d"
  "test_fd_reduction"
  "test_fd_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fd_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
