# Empty compiler generated dependencies file for test_fd_reduction.
# This may be replaced when dependencies are built.
