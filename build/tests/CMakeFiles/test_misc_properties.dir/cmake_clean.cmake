file(REMOVE_RECURSE
  "CMakeFiles/test_misc_properties.dir/test_misc_properties.cpp.o"
  "CMakeFiles/test_misc_properties.dir/test_misc_properties.cpp.o.d"
  "test_misc_properties"
  "test_misc_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
