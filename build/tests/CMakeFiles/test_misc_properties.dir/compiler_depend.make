# Empty compiler generated dependencies file for test_misc_properties.
# This may be replaced when dependencies are built.
