file(REMOVE_RECURSE
  "CMakeFiles/test_failure_pattern.dir/test_failure_pattern.cpp.o"
  "CMakeFiles/test_failure_pattern.dir/test_failure_pattern.cpp.o.d"
  "test_failure_pattern"
  "test_failure_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
