# Empty compiler generated dependencies file for test_bivalence.
# This may be replaced when dependencies are built.
