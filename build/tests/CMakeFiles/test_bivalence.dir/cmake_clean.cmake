file(REMOVE_RECURSE
  "CMakeFiles/test_bivalence.dir/test_bivalence.cpp.o"
  "CMakeFiles/test_bivalence.dir/test_bivalence.cpp.o.d"
  "test_bivalence"
  "test_bivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
