# Empty compiler generated dependencies file for test_proc_world.
# This may be replaced when dependencies are built.
