file(REMOVE_RECURSE
  "CMakeFiles/test_proc_world.dir/test_proc_world.cpp.o"
  "CMakeFiles/test_proc_world.dir/test_proc_world.cpp.o.d"
  "test_proc_world"
  "test_proc_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proc_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
