file(REMOVE_RECURSE
  "CMakeFiles/test_adopt_commit.dir/test_adopt_commit.cpp.o"
  "CMakeFiles/test_adopt_commit.dir/test_adopt_commit.cpp.o.d"
  "test_adopt_commit"
  "test_adopt_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adopt_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
