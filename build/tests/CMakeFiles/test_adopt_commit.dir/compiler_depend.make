# Empty compiler generated dependencies file for test_adopt_commit.
# This may be replaced when dependencies are built.
