file(REMOVE_RECURSE
  "CMakeFiles/test_efd_system.dir/test_efd_system.cpp.o"
  "CMakeFiles/test_efd_system.dir/test_efd_system.cpp.o.d"
  "test_efd_system"
  "test_efd_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_efd_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
