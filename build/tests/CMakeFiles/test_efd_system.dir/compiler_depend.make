# Empty compiler generated dependencies file for test_efd_system.
# This may be replaced when dependencies are built.
