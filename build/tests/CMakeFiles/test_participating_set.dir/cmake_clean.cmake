file(REMOVE_RECURSE
  "CMakeFiles/test_participating_set.dir/test_participating_set.cpp.o"
  "CMakeFiles/test_participating_set.dir/test_participating_set.cpp.o.d"
  "test_participating_set"
  "test_participating_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_participating_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
