# Empty dependencies file for test_participating_set.
# This may be replaced when dependencies are built.
