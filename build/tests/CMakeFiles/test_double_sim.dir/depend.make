# Empty dependencies file for test_double_sim.
# This may be replaced when dependencies are built.
