file(REMOVE_RECURSE
  "CMakeFiles/test_double_sim.dir/test_double_sim.cpp.o"
  "CMakeFiles/test_double_sim.dir/test_double_sim.cpp.o.d"
  "test_double_sim"
  "test_double_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
