file(REMOVE_RECURSE
  "CMakeFiles/test_weakest.dir/test_weakest.cpp.o"
  "CMakeFiles/test_weakest.dir/test_weakest.cpp.o.d"
  "test_weakest"
  "test_weakest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weakest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
