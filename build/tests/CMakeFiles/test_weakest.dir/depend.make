# Empty dependencies file for test_weakest.
# This may be replaced when dependencies are built.
