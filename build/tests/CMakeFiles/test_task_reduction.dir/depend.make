# Empty dependencies file for test_task_reduction.
# This may be replaced when dependencies are built.
