file(REMOVE_RECURSE
  "CMakeFiles/test_task_reduction.dir/test_task_reduction.cpp.o"
  "CMakeFiles/test_task_reduction.dir/test_task_reduction.cpp.o.d"
  "test_task_reduction"
  "test_task_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
