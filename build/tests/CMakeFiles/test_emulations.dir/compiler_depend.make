# Empty compiler generated dependencies file for test_emulations.
# This may be replaced when dependencies are built.
