file(REMOVE_RECURSE
  "CMakeFiles/test_emulations.dir/test_emulations.cpp.o"
  "CMakeFiles/test_emulations.dir/test_emulations.cpp.o.d"
  "test_emulations"
  "test_emulations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emulations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
